(** Test-application-time model (paper §3.4).

    With BIC sensors, applying one test vector costs the degraded
    circuit delay [D_BIC] plus the IDDQ settling-and-sensing time
    [Delta(tau_i)] of the measured module: the transient i_DD must
    decay below the detection threshold before the bypass switch is
    opened and the sensing device read.  The paper characterizes
    [Delta] from SPICE runs as a function of the sensor time constant
    [tau = R_s * C_s]; we use the analytic exponential-settling form
    [Delta(tau) = k * tau] with [k = settling_decades =
    ln(I_peak / I_th)]. *)

val settling : Iddq_celllib.Technology.t -> Sensor.t -> float
(** [Delta(tau)] for one sensor (s). *)

val per_vector :
  Iddq_celllib.Technology.t -> d_bic:float -> Sensor.t list -> float
(** Time to apply one vector and strobe every sensor: all modules are
    measured in parallel, so the vector costs
    [d_bic + max_i Delta(tau_i)].  [d_bic] alone when no sensors. *)

val total :
  Iddq_celllib.Technology.t -> d_bic:float -> vectors:int -> Sensor.t list -> float
(** [vectors * per_vector]. *)

val summed_module_times :
  Iddq_celllib.Technology.t -> d_bic:float -> Sensor.t list -> float
(** [sum_i (d_bic + Delta(tau_i))] — the per-module measurement times
    the cost estimator [c4] aggregates (DESIGN.md §2). *)
