module Technology = Iddq_celllib.Technology

type session = { members : int list }
type t = { sessions : session list; vector_time : float }

let session_settling tech sensors session =
  List.fold_left
    (fun acc m ->
      let s = List.assoc m sensors in
      Stdlib.max acc (Test_time.settling tech s))
    0.0 session.members

let finish ~technology ~d_bic sensors sessions =
  let time =
    List.fold_left
      (fun acc session -> acc +. session_settling technology sensors session)
      d_bic sessions
  in
  { sessions; vector_time = time }

let schedule ~technology ~d_bic ~budget sensors =
  if budget <= 0.0 then invalid_arg "Schedule.schedule: budget must be positive";
  (* first-fit decreasing on the sensors' design peak currents *)
  let sorted =
    List.sort
      (fun (_, a) (_, b) ->
        Float.compare b.Sensor.peak_current a.Sensor.peak_current)
      sensors
  in
  let bins = ref [] in
  (* (remaining budget, members-reversed) list *)
  List.iter
    (fun (m, s) ->
      let need = s.Sensor.peak_current in
      let rec place = function
        | [] -> [ (budget -. need, [ m ]) ]
        | (room, members) :: rest when room >= need ->
          (room -. need, m :: members) :: rest
        | bin :: rest -> bin :: place rest
      in
      bins := place !bins)
    sorted;
  let sessions =
    List.map (fun (_, members) -> { members = List.rev members }) !bins
  in
  finish ~technology ~d_bic sensors sessions

let serial ~technology ~d_bic sensors =
  finish ~technology ~d_bic sensors
    (List.map (fun (m, _) -> { members = [ m ] }) sensors)

let parallel ~technology ~d_bic sensors =
  finish ~technology ~d_bic sensors
    [ { members = List.map fst sensors } ]
