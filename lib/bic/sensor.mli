(** BIC sensor sizing and area model (paper §3.1, Fig. 1).

    One sensor per module: a sensing device in the virtual-ground
    rail, a bypass MOS switch closed during normal operation, and
    detection circuitry producing PASS/FAIL.  The bypass switch is
    sized so the worst-case rail bounce stays within the budget:
    [R_s = r* / î_DD,max]; smaller [R_s] (bigger switch) costs area:
    [A = A0 + A1 / R_s]. *)

type t = {
  rs : float;  (** Bypass ON resistance (ohm). *)
  cs : float;  (** Total virtual-rail capacitance: module + sensor (F). *)
  area : float;  (** Sensor area, [A0 + A1 / R_s] (units). *)
  tau : float;  (** Sensing time constant [R_s * C_s] (s). *)
  peak_current : float;  (** The î_DD,max the switch was sized for (A). *)
}

val size :
  technology:Iddq_celllib.Technology.t ->
  peak_current:float ->
  module_rail_capacitance:float ->
  t
(** Sizes a sensor for a module with the given estimated maximum
    transient current and rail capacitance.  [peak_current] may be 0
    (empty module): the switch degenerates to minimum size, i.e.
    [R_s] is clipped to {!max_rs}. *)

val max_rs : float
(** Upper clip on [R_s] (a minimum-size bypass device exists even for
    currentless modules). *)

val for_module : Iddq_analysis.Charac.t -> int array -> t
(** Convenience: estimate the module quantities with
    {!Iddq_analysis.Switching} and size the sensor. *)

val rail_perturbation : t -> current:float -> float
(** [rs * current]: the bounce a given transient current causes. *)

val pp : Format.formatter -> t -> unit
