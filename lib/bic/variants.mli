(** Alternative BIC sensing devices.

    The paper (§1) notes that "several sensing devices can be used,
    each with its advantages and disadvantages" and cites three
    families; each is modelled here as a transformation of the
    technology constants so the whole synthesis pipeline runs
    unchanged per variant:

    - {!Bypass_mos} — the paper's Fig. 1 device: a sensing element
      with a parallel bypass switch sized to the rail budget.  The
      baseline ({!Iddq_celllib.Technology.default} as-is).
    - {!Pn_junction} — a diode (or bipolar) element in the rail with
      {e no} bypass: no conductance-proportional area at all, but the
      rail sees the full junction drop (~0.5 V) during every
      transient — the delay/noise-margin problem that motivated
      bypassed sensors (paper refs [8,9]).
    - {!Proportional} — the proportional current sensor of Rius &
      Figueras (JETTA 1992, paper ref [9]): a larger detection
      front-end buys a more conductance-efficient branch and roughly
      halves the settling time. *)

type kind = Bypass_mos | Pn_junction | Proportional

val all : kind list
val to_string : kind -> string

val technology_for :
  Iddq_celllib.Technology.t -> kind -> Iddq_celllib.Technology.t
(** The variant's technology constants: [Bypass_mos] is the identity;
    [Pn_junction] zeroes the conductance area term (a minimum-size
    sensing junction), fixes the rail perturbation at the junction
    drop of 0.5 V and settles fastest; [Proportional] pays 2x the
    fixed detection area for 0.6x the conductance area and 0.5x the
    settling constant. *)
