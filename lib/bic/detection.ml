module Technology = Iddq_celllib.Technology
module Switching = Iddq_analysis.Switching

type verdict = Pass | Fail

let verdict_to_string = function Pass -> "PASS" | Fail -> "FAIL"

let strobe tech ~measured_current =
  if measured_current >= tech.Technology.iddq_threshold then Fail else Pass

let margin tech ~measured_current =
  let th = tech.Technology.iddq_threshold in
  (th -. measured_current) /. th

let module_quiescent ch gates ~extra_defect_current =
  Switching.leakage ch gates +. extra_defect_current
