(** PASS/FAIL detection behaviour of a BIC sensor (paper Fig. 1).

    During test, after the transient has settled, the bypass switch is
    opened and the sensing device converts the module's quiescent
    current into a voltage compared against the threshold: the sensor
    reports [Fail] when the sensed current is at or above
    [I_DDQ,th]. *)

type verdict = Pass | Fail

val verdict_to_string : verdict -> string

val strobe : Iddq_celllib.Technology.t -> measured_current:float -> verdict
(** One measurement against the technology threshold. *)

val margin : Iddq_celllib.Technology.t -> measured_current:float -> float
(** Signed distance to the threshold in threshold units:
    [(I_th - I) / I_th]; positive means a comfortable PASS, negative a
    FAIL. *)

val module_quiescent :
  Iddq_analysis.Charac.t -> int array -> extra_defect_current:float -> float
(** Quiescent current a sensor sees: the module's non-defective
    leakage plus any activated defect current. *)
