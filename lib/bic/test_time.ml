module Technology = Iddq_celllib.Technology

let settling tech sensor =
  tech.Technology.settling_decades *. sensor.Sensor.tau

let per_vector tech ~d_bic sensors =
  let worst =
    List.fold_left (fun acc s -> Stdlib.max acc (settling tech s)) 0.0 sensors
  in
  d_bic +. worst

let total tech ~d_bic ~vectors sensors =
  float_of_int vectors *. per_vector tech ~d_bic sensors

let summed_module_times tech ~d_bic sensors =
  List.fold_left (fun acc s -> acc +. d_bic +. settling tech s) 0.0 sensors
