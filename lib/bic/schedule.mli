(** Measurement scheduling across modules.

    Strobing every BIC sensor in parallel is fastest, but each open
    bypass switch lets its module's residual transient wiggle the
    sensing node: test engineers often bound how much total sensed
    current may be measured simultaneously (resolution/noise budget of
    the shared detection comparators).  This scheduler packs module
    measurements into sessions under such a budget; one test vector
    then costs [sessions * (D_BIC + settling of the slowest sensor in
    its session)] in the worst case, interpolating between the paper's
    fully parallel model and a fully serial measurement. *)

type session = { members : int list;  (** Module ids measured together. *) }

type t = {
  sessions : session list;
  vector_time : float;  (** Time to apply one vector and run all sessions (s). *)
}

val schedule :
  technology:Iddq_celllib.Technology.t ->
  d_bic:float ->
  budget:float ->
  (int * Sensor.t) list ->
  t
(** [schedule ~technology ~d_bic ~budget sensors] first-fit-decreasing
    packs modules so that each session's summed design peak current
    ({!Sensor.t}[.peak_current]) stays within [budget]; a module whose
    own peak exceeds the budget gets a session of its own.  The first
    session includes the vector's settling; later sessions only pay
    their own settling (the logic is already quiet).  An infinite
    budget yields one session = the paper's parallel model. *)

val serial : technology:Iddq_celllib.Technology.t -> d_bic:float -> (int * Sensor.t) list -> t
(** One module per session. *)

val parallel : technology:Iddq_celllib.Technology.t -> d_bic:float -> (int * Sensor.t) list -> t
(** Everything in one session — {!Test_time.per_vector} semantics. *)
