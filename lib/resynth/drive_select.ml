module Charac = Iddq_analysis.Charac
module Timing = Iddq_analysis.Timing
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost

type swap = { gate : int; module_id : int; slot : int }

type result = {
  charac : Charac.t;
  partition : Partition.t;
  swaps : swap list;
  before : Cost.breakdown;
  after : Cost.breakdown;
}

(* The module and slot holding the globally worst transient peak. *)
let worst_peak p =
  List.fold_left
    (fun acc m ->
      let profile = Partition.current_profile p m in
      Array.to_seq profile
      |> Seq.fold_lefti
           (fun acc slot current ->
             match acc with
             | Some (_, _, best) when current <= best -> acc
             | _ when current <= 0.0 -> acc
             | _ -> Some (m, slot, current))
           acc)
    None (Partition.module_ids p)

let optimize ?weights ?(max_swaps = 64) ?(slack_margin = 1.0) start =
  let assignment = Partition.assignment start in
  let rec loop ch p swaps budget best_cost =
    if budget = 0 then (ch, p, swaps)
    else begin
      match worst_peak p with
      | None -> (ch, p, swaps)
      | Some (m, slot, _) ->
        let slacks = Timing.slacks ch ~gate_delay:(Charac.delay ch) in
        (* candidates: peak-slot gates of the worst module, not yet
           low-drive, whose slack absorbs the 1.5x delay increase *)
        let candidates =
          Array.to_list (Partition.members p m)
          |> List.filter (fun g ->
                 Charac.can_switch_at ch g slot
                 && (not (Charac.is_low_power ch g))
                 && Charac.delay ch g *. 0.5 <= slack_margin *. slacks.(g))
        in
        (* try the highest-current candidates first; evaluating the
           full cost per candidate is cheap at bench sizes, but cap
           the fan-out of attempts to keep the pass near-linear *)
        let ranked =
          List.sort
            (fun a b ->
              Float.compare (Charac.peak_current ch b) (Charac.peak_current ch a))
            candidates
        in
        let rec take n = function
          | [] -> []
          | _ when n = 0 -> []
          | x :: rest -> x :: take (n - 1) rest
        in
        let attempt g =
          let ch' = Charac.with_low_power ch ~gates:[| g |] in
          let p' = Partition.create ch' ~assignment in
          let cost = (Cost.evaluate ?weights p').Cost.penalized in
          (g, ch', p', cost)
        in
        let attempts = List.map attempt (take 6 ranked) in
        let best =
          List.fold_left
            (fun acc ((_, _, _, cost) as cand) ->
              match acc with
              | Some (_, _, _, best) when best <= cost -> acc
              | _ -> Some cand)
            None attempts
        in
        (match best with
        | Some (g, ch', p', cost) when cost < best_cost ->
          loop ch' p'
            ({ gate = g; module_id = m; slot } :: swaps)
            (budget - 1) cost
        | Some _ | None -> (ch, p, swaps))
    end
  in
  let ch0 = Partition.charac start in
  let before = Cost.evaluate ?weights start in
  let ch, p, swaps =
    loop ch0 (Partition.copy start) [] max_swaps before.Cost.penalized
  in
  {
    charac = ch;
    partition = p;
    swaps = List.rev swaps;
    before;
    after = Cost.evaluate ?weights p;
  }
