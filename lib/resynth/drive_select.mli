(** Cost-aware drive selection — the paper's stated next step
    ("controlling the logic synthesis procedure such that the
    presented cost function is considered at the early beginning",
    §6), realized as a technology-mapping decision.

    After partitioning, each module's sensor is sized for its maximum
    simultaneous transient î_DD,max.  A dual-drive cell library lets
    us shave that peak: gates that {e define} the peak slot but carry
    timing slack are re-mapped to their low-drive variant
    ({!Iddq_celllib.Cell.low_power_variant}), cutting their transient
    contribution ~2x for a bounded local slowdown.  The pass is
    greedy: while the worst module's peak can be reduced without
    violating timing or discriminability, swap the best candidate and
    re-evaluate the full paper cost; stop at the swap budget or when
    no swap improves the cost. *)

type swap = {
  gate : int;  (** Gate index re-mapped to low drive. *)
  module_id : int;
  slot : int;  (** The peak slot that motivated the swap. *)
}

type result = {
  charac : Iddq_analysis.Charac.t;  (** Re-characterized circuit. *)
  partition : Iddq_core.Partition.t;  (** Same assignment, new charac. *)
  swaps : swap list;  (** Applied swaps, in order. *)
  before : Iddq_core.Cost.breakdown;
  after : Iddq_core.Cost.breakdown;
}

val optimize :
  ?weights:Iddq_core.Cost.weights ->
  ?max_swaps:int ->
  ?slack_margin:float ->
  Iddq_core.Partition.t ->
  result
(** [optimize p] runs the greedy pass on a partitioned design.
    [max_swaps] bounds the number of re-mapped gates (default 64).
    [slack_margin] (default 1.0) scales how much of a gate's slack
    the swap may consume: the low-drive delay increase must be at
    most [slack_margin *. slack g].  The input partition is not
    modified. *)
