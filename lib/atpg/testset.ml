module Circuit = Iddq_netlist.Circuit
module Stuck_at = Iddq_defects.Stuck_at
module Coverage = Iddq_defects.Coverage
module Rng = Iddq_util.Rng

type strategy = Greedy | Essential | Refined

let strategy_to_string = function
  | Greedy -> "greedy"
  | Essential -> "essential"
  | Refined -> "refined"

let strategy_of_string = function
  | "greedy" -> Some Greedy
  | "essential" -> Some Essential
  | "refined" -> Some Refined
  | _ -> None

let strategies = [ Greedy; Essential; Refined ]

type stats = {
  random : int;
  generated : int;
  untestable : int;
  aborted : int;
  targeted : int;
}

type gen = {
  vectors : bool array array;
  matrix : Coverage.detection_matrix;
  coverage : float;
  efficiency : float;
  stats : stats;
  remaining : int;
}

(* The fault-dropping generation loop: simulate what the current set
   already catches (packed, {!Stuck_at.fault_simulate} under
   {!Stuck_at.undetected}), then PODEM each survivor; every generated
   cube is concretized and the {e concrete} vector re-simulated
   against the whole remaining list, so one vector can drop many
   faults beyond its target. *)
let generate ?max_backtracks ?(budget = max_int) ~rng ?(initial = [||]) c
    faults =
  let live = ref (Stuck_at.undetected c ~vectors:initial ~faults) in
  let vectors = ref (Array.to_list initial) in
  let generated = ref 0
  and untestable = ref 0
  and aborted = ref 0
  and targeted = ref 0 in
  let rec work () =
    match !live with
    | [] -> ()
    | _ when !targeted >= budget -> ()
    | fault :: rest -> begin
      incr targeted;
      match Podem.generate ?max_backtracks c fault with
      | Podem.Untestable ->
        incr untestable;
        live := rest;
        work ()
      | Podem.Aborted ->
        incr aborted;
        live := rest;
        work ()
      | Podem.Test cube ->
        let vector = Podem.concretize ~rng cube in
        incr generated;
        vectors := !vectors @ [ vector ];
        live := List.filter (fun f -> not (Stuck_at.detects c f vector)) rest;
        work ()
    end
  in
  work ();
  let vector_arr = Array.of_list !vectors in
  let total = List.length faults in
  let matrix = Stuck_at.detection_matrix c ~vectors:vector_arr ~faults in
  let detected = Coverage.num_detectable matrix in
  {
    vectors = vector_arr;
    matrix;
    coverage =
      (if total = 0 then 1.0 else float_of_int detected /. float_of_int total);
    efficiency =
      (if total = 0 then 1.0
       else float_of_int (detected + !untestable) /. float_of_int total);
    stats =
      {
        random = Array.length initial;
        generated = !generated;
        untestable = !untestable;
        aborted = !aborted;
        targeted = !targeted;
      };
    remaining = List.length !live;
  }

let minimize strategy m =
  match strategy with
  | Greedy -> Coverage.compact m
  | Essential -> Coverage.minimize_essential m
  | Refined -> Coverage.minimize_refined m

let select vectors selection = Array.map (fun v -> vectors.(v)) selection
