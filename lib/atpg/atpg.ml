module Circuit = Iddq_netlist.Circuit
module Stuck_at = Iddq_defects.Stuck_at
module Coverage = Iddq_defects.Coverage
module Rng = Iddq_util.Rng

type strategy = Testset.strategy = Greedy | Essential | Refined

let strategy_to_string = Testset.strategy_to_string
let strategy_of_string = Testset.strategy_of_string

type config = {
  max_backtracks : int;
  budget : int option;
  strategy : strategy;
  seed : int;
  random_vectors : int;
}

let default_config =
  {
    max_backtracks = 2000;
    budget = None;
    strategy = Refined;
    seed = 42;
    random_vectors = 32;
  }

let config ?(max_backtracks = default_config.max_backtracks)
    ?budget
    ?(strategy = default_config.strategy)
    ?(seed = default_config.seed)
    ?(random_vectors = default_config.random_vectors) () =
  { max_backtracks; budget; strategy; seed; random_vectors }

type error =
  | Empty_fault_list
  | Bad_config of string
  | Fault_mismatch of string
  | Budget_exhausted of { targeted : int; remaining : int }
  | Internal of string

let error_to_string = function
  | Empty_fault_list -> "empty fault list: nothing to target"
  | Bad_config msg -> Printf.sprintf "bad configuration: %s" msg
  | Fault_mismatch msg -> Printf.sprintf "fault/circuit mismatch: %s" msg
  | Budget_exhausted { targeted; remaining } ->
    Printf.sprintf
      "PODEM budget exhausted after %d target attempts (%d faults untargeted)"
      targeted remaining
  | Internal msg -> Printf.sprintf "internal ATPG error: %s" msg

type set_result = {
  vectors : bool array array;
  all_vectors : bool array array;
  selected : int array;
  vectors_before : int;
  coverage : float;
  efficiency : float;
  stats : Testset.stats;
  matrix : Coverage.detection_matrix;
  strategy : strategy;
}

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate_config cfg =
  if cfg.max_backtracks < 1 then
    Error
      (Bad_config
         (Printf.sprintf "max_backtracks must be >= 1 (got %d)"
            cfg.max_backtracks))
  else
    match cfg.budget with
    | Some b when b < 1 ->
      Error (Bad_config (Printf.sprintf "budget must be >= 1 (got %d)" b))
    | _ ->
      if cfg.random_vectors < 0 then
        Error
          (Bad_config
             (Printf.sprintf "random_vectors must be >= 0 (got %d)"
                cfg.random_vectors))
      else Ok ()

(* Reject anything Podem/the simulators would raise on: stem ids out
   of range, pin faults that do not name a gate input. *)
let validate_fault c fault =
  let n = Circuit.num_nodes c in
  match fault with
  | Stuck_at.Stem (id, _) ->
    if id < 0 || id >= n then
      Error
        (Fault_mismatch
           (Printf.sprintf "stem fault on node %d, circuit has %d nodes" id n))
    else Ok ()
  | Stuck_at.Pin { gate; pin; _ } ->
    if gate < 0 || gate >= n then
      Error
        (Fault_mismatch
           (Printf.sprintf "pin fault on node %d, circuit has %d nodes" gate n))
    else if not (Circuit.is_gate c gate) then
      Error
        (Fault_mismatch
           (Printf.sprintf "pin fault on node %d, which is a primary input"
              gate))
    else
      let arity = Circuit.fanin_count c gate in
      if pin < 0 || pin >= arity then
        Error
          (Fault_mismatch
             (Printf.sprintf "pin %d of gate node %d, which has %d fanins" pin
                gate arity))
      else Ok ()

let rec validate_faults c = function
  | [] -> Ok ()
  | f :: rest -> begin
    match validate_fault c f with
    | Error _ as e -> e
    | Ok () -> validate_faults c rest
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Stdlib.Result.bind

let generate_result ?(config = default_config) c faults =
  let* () = validate_config config in
  let* () = match faults with [] -> Error Empty_fault_list | _ -> Ok () in
  let* () = validate_faults c faults in
  match
    let rng = Rng.create config.seed in
    let initial =
      if config.random_vectors = 0 then [||]
      else Iddq_patterns.Pattern_gen.random ~rng c ~count:config.random_vectors
    in
    Testset.generate ~max_backtracks:config.max_backtracks
      ?budget:config.budget ~rng ~initial c faults
  with
  | exception exn -> Error (Internal (Printexc.to_string exn))
  | gen ->
    if gen.Testset.remaining > 0 then
      Error
        (Budget_exhausted
           {
             targeted = gen.Testset.stats.Testset.targeted;
             remaining = gen.Testset.remaining;
           })
    else begin
      match Testset.minimize config.strategy gen.Testset.matrix with
      | exception exn -> Error (Internal (Printexc.to_string exn))
      | selected ->
        Ok
          {
            vectors = Testset.select gen.Testset.vectors selected;
            all_vectors = gen.Testset.vectors;
            selected;
            vectors_before = Array.length gen.Testset.vectors;
            coverage = gen.Testset.coverage;
            efficiency = gen.Testset.efficiency;
            stats = gen.Testset.stats;
            matrix = gen.Testset.matrix;
            strategy = config.strategy;
          }
    end

let run_result ?config c =
  match Stuck_at.collapsed_fault_list c with
  | exception exn -> Error (Internal (Printexc.to_string exn))
  | faults -> generate_result ?config c faults

let minimize_result ?(strategy = default_config.strategy) m =
  match Testset.minimize strategy m with
  | exception exn -> Error (Internal (Printexc.to_string exn))
  | selected -> Ok selected

let fail_on_error = function
  | Ok v -> v
  | Error e -> failwith (error_to_string e)

let generate_exn ?config c faults =
  fail_on_error (generate_result ?config c faults)

let run_exn ?config c = fail_on_error (run_result ?config c)
