(** ATPG test-set construction: the fault-dropping generation loop and
    the minimization strategies.

    This is the engine under the {!Atpg} facade — the facade validates
    inputs and wraps these calls in a [result]; machine-facing callers
    (the CLI, the server, the bench) should go through {!Atpg} and its
    structured errors rather than call these directly.

    The loop implements the classic recipe the ROADMAP names: random
    vectors first (cheap coverage), PODEM targeting each fault the
    random set leaves undetected, and {e fault dropping} throughout —
    the packed {!Iddq_defects.Stuck_at.fault_simulate} drops what the
    initial set catches, and each concretized PODEM vector is
    re-simulated against the whole remaining list so one vector can
    drop many faults.  Minimization then operates on the packed
    stuck-at detection matrix
    ({!Iddq_defects.Stuck_at.detection_matrix}) via the bit-parallel
    {!Iddq_defects.Coverage} minimizers. *)

type strategy =
  | Greedy  (** {!Iddq_defects.Coverage.compact} — the baseline. *)
  | Essential
      (** Essential-vector extraction (faults detected by exactly one
          vector) + greedy set-cover over the rest
          ({!Iddq_defects.Coverage.minimize_essential}). *)
  | Refined
      (** Greedy set-cover followed by local refinement passes that
          eliminate vectors made redundant by later picks
          ({!Iddq_defects.Coverage.minimize_refined}); never larger
          than [Greedy]'s selection. *)

val strategy_to_string : strategy -> string
val strategy_of_string : string -> strategy option

val strategies : strategy list
(** All three, in declaration order (sweep order for the bench). *)

type stats = {
  random : int;  (** Initial random vectors. *)
  generated : int;  (** Vectors contributed by PODEM. *)
  untestable : int;  (** Faults proven redundant. *)
  aborted : int;  (** PODEM backtrack-limit hits. *)
  targeted : int;  (** PODEM [generate] calls spent. *)
}

type gen = {
  vectors : bool array array;  (** Initial vectors + PODEM top-up, in order. *)
  matrix : Iddq_defects.Coverage.detection_matrix;
      (** Full stuck-at detection matrix of [vectors] over the fault
          list — what the minimization stage runs on. *)
  coverage : float;  (** Detected / total (untestable count as undetected). *)
  efficiency : float;  (** (Detected + untestable) / total. *)
  stats : stats;
  remaining : int;
      (** Faults left untargeted when the budget stopped the loop
          ([0] on a complete run). *)
}

val generate :
  ?max_backtracks:int ->
  ?budget:int ->
  rng:Iddq_util.Rng.t ->
  ?initial:bool array array ->
  Iddq_netlist.Circuit.t ->
  Iddq_defects.Stuck_at.fault list ->
  gen
(** The generation loop.  [budget] (default: unlimited) caps the
    number of PODEM target attempts; when it runs out the loop stops
    with [remaining > 0] and the result covers what was built so far.
    [max_backtracks] is the per-target PODEM limit
    ({!Podem.generate}).  May raise on malformed faults
    ([Invalid_argument], e.g. a pin fault naming an input node) — the
    {!Atpg} facade validates and returns structured errors instead. *)

val minimize : strategy -> Iddq_defects.Coverage.detection_matrix -> int array
(** Selected vector indices, ascending.  Every strategy preserves the
    matrix's full coverage
    ({!Iddq_defects.Coverage.coverage_of_selection} of the selection
    equals the whole set's). *)

val select : bool array array -> int array -> bool array array
(** Materialize a selection: the chosen rows, in selection order. *)
