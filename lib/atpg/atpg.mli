(** Result-typed ATPG facade: stuck-at test-set generation (random
    vectors + PODEM top-up with fault dropping) and minimization, in
    one validated call.

    This module follows the library's facade conventions
    ({!Iddq.Pipeline}): build configurations with the {!val-config}
    builder, call the [*_result] entry points and match on the
    structured {!error}; the raising [*_exn] wrappers exist only as
    thin derivatives for interactive callers.  Machine-facing callers
    (the CLI [testset] subcommand, the server's [testset] request, the
    bench) go through this module — never through the raw {!Podem} /
    {!Testset} entry points, which may raise on malformed input. *)

type strategy = Testset.strategy = Greedy | Essential | Refined
(** Minimization strategies — see {!Testset.strategy}. *)

val strategy_to_string : strategy -> string
val strategy_of_string : string -> strategy option

(** {1 Configuration} *)

type config = {
  max_backtracks : int;  (** Per-target PODEM backtrack limit. *)
  budget : int option;
      (** Cap on PODEM target attempts; [None] = unlimited.  A run
          that exhausts its budget with faults still untargeted
          returns [Error (Budget_exhausted _)]. *)
  strategy : strategy;
  seed : int;  (** Drives the random vectors and don't-care filling. *)
  random_vectors : int;  (** Random vectors before the PODEM top-up. *)
}
(** @deprecated Building or updating this record directly
    ([{ default_config with ... }]) is deprecated in favour of the
    {!val-config} builder: record updates break silently when a field
    is added, while the builder keeps every omitted field at its
    default.  The type stays exposed so existing callers compile. *)

val config :
  ?max_backtracks:int ->
  ?budget:int ->
  ?strategy:strategy ->
  ?seed:int ->
  ?random_vectors:int ->
  unit ->
  config
(** [config ()] is {!default_config}; each label overrides one field.
    Validation happens at the entry points (so a hand-built bad config
    yields [Error (Bad_config _)], never a raise). *)

val default_config : config
(** 2000 backtracks, unlimited budget, [Refined] strategy, seed 42,
    32 random vectors. *)

(** {1 Structured errors} *)

type error =
  | Empty_fault_list  (** No faults to target (e.g. an empty circuit). *)
  | Bad_config of string
      (** Non-positive backtrack limit or budget, negative random
          vector count. *)
  | Fault_mismatch of string
      (** A fault does not fit the circuit: stem node id out of range,
          pin fault on a non-gate node, pin index beyond the gate's
          fanin count. *)
  | Budget_exhausted of { targeted : int; remaining : int }
      (** The PODEM attempt budget ran out with [remaining] faults
          still untargeted after [targeted] attempts. *)
  | Internal of string  (** A pass failed in an unclassified way. *)

val error_to_string : error -> string

(** {1 Result-typed entry points} *)

type set_result = {
  vectors : bool array array;
      (** The minimized test set (rows of the generated set selected
          by [selected], in ascending original order). *)
  all_vectors : bool array array;
      (** The full generated set pre-minimization ([selected] indexes
          into it). *)
  selected : int array;  (** Kept vector indices into the full set. *)
  vectors_before : int;  (** Size of the generated set pre-minimization. *)
  coverage : float;
      (** Fault coverage — identical for the full and minimized sets
          (every strategy preserves coverage). *)
  efficiency : float;  (** (Detected + proven untestable) / total. *)
  stats : Testset.stats;
  matrix : Iddq_defects.Coverage.detection_matrix;
      (** Full-set detection matrix (for re-minimizing under another
          strategy without regenerating). *)
  strategy : strategy;  (** The strategy that produced [selected]. *)
}

val generate_result :
  ?config:config ->
  Iddq_netlist.Circuit.t ->
  Iddq_defects.Stuck_at.fault list ->
  (set_result, error) result
(** Validate the configuration and every fault against the circuit,
    run the generation loop ({!Testset.generate}) and minimize with
    the configured strategy.  Never raises on bad input. *)

val run_result :
  ?config:config -> Iddq_netlist.Circuit.t -> (set_result, error) result
(** {!generate_result} on the circuit's equivalence-collapsed fault
    list ({!Iddq_defects.Stuck_at.collapsed_fault_list}) — the
    standard whole-circuit entry point. *)

val minimize_result :
  ?strategy:strategy ->
  Iddq_defects.Coverage.detection_matrix ->
  (int array, error) result
(** Re-minimize an existing detection matrix (e.g. {!set_result}
    [.matrix] under a different strategy, or the server's cached
    matrix).  Default strategy: {!default_config}'s. *)

(** {1 Raising wrappers} *)

val generate_exn :
  ?config:config ->
  Iddq_netlist.Circuit.t ->
  Iddq_defects.Stuck_at.fault list ->
  set_result
(** [generate_result], raising [Failure (error_to_string e)]. *)

val run_exn : ?config:config -> Iddq_netlist.Circuit.t -> set_result
(** [run_result], raising [Failure (error_to_string e)]. *)
