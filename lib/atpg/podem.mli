(** PODEM test generation for stuck-at faults (Goel 1981).

    The paper assumes "a precomputed test vector set"; this module
    produces one.  PODEM searches the primary-input space only: it
    picks an {e objective} (activate the fault, then advance the
    D-frontier), {e backtraces} the objective to an unassigned input
    (guided by SCOAP controllability), runs three-valued good and
    faulty implications, and backtracks on conflicts.  The usual
    pruning applies: a vanished D-frontier or no X-path to an output
    kills a branch.

    Values are the classical five: 0, 1, X, D (good 1 / faulty 0) and
    D̄ — represented as a pair of three-valued simulations sharing the
    input assignment. *)

type result =
  | Test of bool option array
      (** A detecting input cube ([None] = don't-care). *)
  | Untestable  (** Search space exhausted: the fault is redundant. *)
  | Aborted  (** Backtrack limit hit. *)

val generate :
  ?max_backtracks:int ->
  Iddq_netlist.Circuit.t ->
  Iddq_defects.Stuck_at.fault ->
  result
(** Default backtrack limit: 2000. *)

val concretize : rng:Iddq_util.Rng.t -> bool option array -> bool array
(** Fill the don't-cares randomly. *)

type set_result = {
  vectors : bool array array;  (** Final ordered test set. *)
  coverage : float;  (** Detected / total. *)
  efficiency : float;
      (** (Detected + proven untestable) / total — the standard ATPG
          efficiency; 1.0 means every fault was either tested or
          proven redundant. *)
  generated : int;  (** Vectors contributed by PODEM. *)
  untestable : int;
  aborted : int;
}

val complete_set :
  ?max_backtracks:int ->
  rng:Iddq_util.Rng.t ->
  ?initial:bool array array ->
  Iddq_netlist.Circuit.t ->
  Iddq_defects.Stuck_at.fault list ->
  set_result
(** Fault-simulate the [initial] vectors (default: none) with
    dropping, then call {!generate} for each remaining fault,
    fault-simulating each new vector against the survivors.  The
    result's coverage counts untestable faults as undetected.

    @deprecated This raw positional entry point is deprecated in
    favour of the {!Atpg} facade ({!Atpg.generate_result} /
    {!Atpg.run_result}): the facade validates faults against the
    circuit (this function raises [Invalid_argument] on e.g. a pin
    fault naming an input node), returns structured errors, supports a
    target budget, and hands back the detection matrix for
    minimization.  The function stays exposed so existing callers
    compile, and as the oracle the facade's tests compare against. *)
