module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate
module Scoap = Iddq_analysis.Scoap
module Stuck_at = Iddq_defects.Stuck_at
module Rng = Iddq_util.Rng

type t3 = F | T | U

let t3_not = function F -> T | T -> F | U -> U

let t3_and a b =
  match a, b with
  | F, _ | _, F -> F
  | T, T -> T
  | U, (T | U) | T, U -> U

let t3_or a b =
  match a, b with
  | T, _ | _, T -> T
  | F, F -> F
  | U, (F | U) | F, U -> U

let t3_xor a b =
  match a, b with
  | U, _ | _, U -> U
  | T, T | F, F -> F
  | T, F | F, T -> T

let eval3 kind inputs =
  let reduce f init = Array.fold_left f init inputs in
  match kind with
  | Gate.And -> reduce t3_and T
  | Gate.Nand -> t3_not (reduce t3_and T)
  | Gate.Or -> reduce t3_or F
  | Gate.Nor -> t3_not (reduce t3_or F)
  | Gate.Xor -> reduce t3_xor F
  | Gate.Xnor -> t3_not (reduce t3_xor F)
  | Gate.Not -> t3_not inputs.(0)
  | Gate.Buff -> inputs.(0)

type result = Test of bool option array | Untestable | Aborted

(* Per-implication state: good and faulty three-valued node values. *)
type sims = { good : t3 array; faulty : t3 array }

let simulate c fault assignment =
  let n = Circuit.num_nodes c in
  let good = Array.make n U and faulty = Array.make n U in
  Array.blit assignment 0 good 0 (Array.length assignment);
  Array.blit assignment 0 faulty 0 (Array.length assignment);
  (* stuck primary input (stem fault on an input) *)
  (match fault with
  | Stuck_at.Stem (id, v) when Circuit.is_input c id ->
    faulty.(id) <- (if v then T else F)
  | Stuck_at.Stem _ | Stuck_at.Pin _ -> ());
  Circuit.iter_gates c (fun g kind fanins ->
      let id = Circuit.node_of_gate c g in
      good.(id) <- eval3 kind (Array.map (fun src -> good.(src)) fanins);
      let faulty_inputs =
        Array.mapi
          (fun pin src ->
            match fault with
            | Stuck_at.Pin { gate; pin = p; value } when gate = id && p = pin ->
              if value then T else F
            | Stuck_at.Pin _ | Stuck_at.Stem _ -> faulty.(src))
          fanins
      in
      let value = eval3 kind faulty_inputs in
      faulty.(id) <-
        (match fault with
        | Stuck_at.Stem (f, v) when f = id -> if v then T else F
        | Stuck_at.Stem _ | Stuck_at.Pin _ -> value));
  { good; faulty }

(* The net whose good value must differ from the stuck value for the
   fault to be activated, and that value. *)
let activation_objective c fault =
  match fault with
  | Stuck_at.Stem (id, v) -> (id, not v)
  | Stuck_at.Pin { gate; pin; value } -> begin
    match Circuit.node c gate with
    | Circuit.Input -> invalid_arg "Podem: pin fault on an input node"
    | Circuit.Gate (_, fanins) -> (fanins.(pin), not value)
  end

(* For a pin fault the error is born inside the reading gate, not on
   the site net itself. *)
let fault_gate = function
  | Stuck_at.Stem _ -> None
  | Stuck_at.Pin { gate; _ } -> Some gate

let error_at net sims = sims.good.(net) <> U && sims.faulty.(net) <> U
                        && sims.good.(net) <> sims.faulty.(net)

let combined_x net sims = sims.good.(net) = U || sims.faulty.(net) = U

let error_at_output c sims =
  Array.exists (fun id -> error_at id sims) (Circuit.outputs c)

(* Gates with an error on some input and an X output; for a pin
   fault, the excited faulty gate itself belongs to the frontier. *)
let d_frontier c sims ~excited_fault_gate =
  let frontier = ref [] in
  Circuit.iter_gates c (fun g _ fanins ->
      let id = Circuit.node_of_gate c g in
      if
        combined_x id sims
        && (Array.exists (fun src -> error_at src sims) fanins
           || excited_fault_gate = Some id)
      then frontier := g :: !frontier);
  List.rev !frontier

(* Is there a forward path of combined-X nets from some frontier gate
   to a primary output? *)
let x_path_exists c sims frontier =
  let seen = Hashtbl.create 64 in
  let rec walk id =
    if Hashtbl.mem seen id then false
    else begin
      Hashtbl.replace seen id ();
      if not (combined_x id sims) then false
      else if Circuit.is_output c id then true
      else Array.exists walk (Circuit.fanouts c id)
    end
  in
  List.exists (fun g -> walk (Circuit.node_of_gate c g)) frontier

(* controlling / non-controlling values per kind *)
let noncontrolling = function
  | Gate.And | Gate.Nand -> Some true
  | Gate.Or | Gate.Nor -> Some false
  | Gate.Not | Gate.Buff | Gate.Xor | Gate.Xnor -> None

let inverts = function
  | Gate.Nand | Gate.Nor | Gate.Not | Gate.Xnor -> true
  | Gate.And | Gate.Or | Gate.Buff | Gate.Xor -> false

(* Backtrace an objective (net, value) to an unassigned primary input,
   choosing at each gate the X input that is cheapest to set
   (SCOAP-guided), flipping the target value through inversions. *)
let backtrace c scoap sims net value =
  let rec walk id value =
    if Circuit.is_input c id then
      if sims.good.(id) = U then Some (id, value) else None
    else begin
      let kind = Circuit.gate_kind c id in
      let fanins =
        match Circuit.node c id with
        | Circuit.Input -> [||]
        | Circuit.Gate (_, fi) -> fi
      in
      let next_value = if inverts kind then not value else value in
      (* pick the X input with the cheapest controllability toward
         [next_value]; for parity gates any X input works *)
      let cost src =
        if next_value then Scoap.cc1 scoap src else Scoap.cc0 scoap src
      in
      let best = ref (-1) and best_cost = ref max_int in
      Array.iter
        (fun src ->
          if sims.good.(src) = U && cost src < !best_cost then begin
            best := src;
            best_cost := cost src
          end)
        fanins;
      if !best < 0 then None else walk !best next_value
    end
  in
  walk net value

let generate ?(max_backtracks = 2000) c fault =
  let scoap = Scoap.compute c in
  let ni = Circuit.num_inputs c in
  let assignment = Array.make ni U in
  (* decision stack: (pi, first_value, alternative_tried) *)
  let stack = ref [] in
  let backtracks = ref 0 in
  let site, site_value = activation_objective c fault in
  let exception Done of result in
  try
    let rec step () =
      let sims = simulate c fault assignment in
      if error_at_output c sims then begin
        raise
          (Done
             (Test
                (Array.map
                   (function T -> Some true | F -> Some false | U -> None)
                   assignment)))
      end;
      (* conflict checks; "excited" = the site carries the activating
         good value (for stem faults this makes the site itself carry
         the error; for pin faults the error is born in the gate) *)
      let target = if site_value then T else F in
      let excited = sims.good.(site) = target in
      let site_blocked = sims.good.(site) <> U && not excited in
      let excited_fault_gate = if excited then fault_gate fault else None in
      let frontier = d_frontier c sims ~excited_fault_gate in
      let dead =
        site_blocked
        || (excited && frontier = [] && not (error_at_output c sims))
        || (excited && frontier <> [] && not (x_path_exists c sims frontier))
      in
      if dead then backtrack ()
      else begin
        (* objective *)
        let objective =
          if not excited then Some (site, site_value)
          else begin
            (* advance the D-frontier: set an X input of a frontier
               gate to the gate's non-controlling value *)
            let rec pick = function
              | [] -> None
              | g :: rest -> begin
                let id = Circuit.node_of_gate c g in
                let kind = Circuit.gate_kind c id in
                let fanins =
                  match Circuit.node c id with
                  | Circuit.Input -> [||]
                  | Circuit.Gate (_, fi) -> fi
                in
                let x_input =
                  Array.fold_left
                    (fun acc src ->
                      if acc = None && sims.good.(src) = U then Some src else acc)
                    None fanins
                in
                match x_input with
                | None -> pick rest
                | Some src ->
                  let v =
                    match noncontrolling kind with
                    | Some v -> v
                    | None -> true (* parity gates: either value works *)
                  in
                  Some (src, v)
              end
            in
            pick frontier
          end
        in
        match objective with
        | None -> backtrack ()
        | Some (net, value) -> begin
          match backtrace c scoap sims net value with
          | None -> backtrack ()
          | Some (pi, v) ->
            assignment.(pi) <- (if v then T else F);
            stack := (pi, v, false) :: !stack;
            step ()
        end
      end
    and backtrack () =
      incr backtracks;
      if !backtracks > max_backtracks then raise (Done Aborted);
      let rec unwind () =
        match !stack with
        | [] -> raise (Done Untestable)
        | (pi, _, true) :: rest ->
          assignment.(pi) <- U;
          stack := rest;
          unwind ()
        | (pi, v, false) :: rest ->
          assignment.(pi) <- (if not v then T else F);
          stack := (pi, not v, true) :: rest
      in
      unwind ();
      step ()
    in
    step ()
  with Done r -> r

let concretize ~rng cube =
  Array.map (function Some v -> v | None -> Rng.bool rng) cube

type set_result = {
  vectors : bool array array;
  coverage : float;
  efficiency : float;
  generated : int;
  untestable : int;
  aborted : int;
}

let complete_set ?max_backtracks ~rng ?(initial = [||]) c faults =
  let live = ref faults in
  let vectors = ref (Array.to_list initial) in
  (* drop faults the initial set already catches *)
  live := Stuck_at.undetected c ~vectors:initial ~faults:!live;
  let generated = ref 0 and untestable = ref 0 and aborted = ref 0 in
  let rec work () =
    match !live with
    | [] -> ()
    | fault :: rest -> begin
      match generate ?max_backtracks c fault with
      | Untestable ->
        incr untestable;
        live := rest;
        work ()
      | Aborted ->
        incr aborted;
        live := rest;
        work ()
      | Test cube ->
        let vector = concretize ~rng cube in
        incr generated;
        vectors := !vectors @ [ vector ];
        (* fault-drop the whole remaining list against the new vector *)
        live :=
          List.filter (fun f -> not (Stuck_at.detects c f vector)) rest;
        work ()
    end
  in
  work ();
  let vector_arr = Array.of_list !vectors in
  let total = List.length faults in
  let final = Stuck_at.fault_simulate c ~vectors:vector_arr ~faults in
  {
    vectors = vector_arr;
    coverage =
      (if total = 0 then 1.0
       else float_of_int final.Stuck_at.detected /. float_of_int total);
    efficiency =
      (if total = 0 then 1.0
       else
         float_of_int (final.Stuck_at.detected + !untestable)
         /. float_of_int total);
    generated = !generated;
    untestable = !untestable;
    aborted = !aborted;
  }
