(** Incremental (delta) cost evaluation — the paper's §4.2 "costs are
    recomputed just for the modified modules", applied to the whole of
    {!Cost.evaluate}.

    A full {!Cost.evaluate} re-sizes every module's sensor and re-runs
    the degradation model over {e every} gate for each longest-path
    query, even though a single {!Partition.move_gate} perturbs the
    aggregates of exactly two modules.  [Cost_eval] wraps a partition
    and caches the expensive per-module and per-gate intermediates:

    - the sized {!Iddq_bic.Sensor.t} of each live module;
    - the degraded delay [d(g) · Δ(g)] of each gate.

    A {!move} marks only the source and target modules dirty; the next
    {!breakdown} re-sizes just those sensors, recomputes the degraded
    delay of just their member gates, and reruns the (cheap, additive)
    longest-path pass over the cached delays.  The O(K)-module sums
    (area, separation, test time, deficit) are reassembled from scratch
    each refresh through {!Cost.of_components} — the same function the
    full evaluator uses, in the same order — so an up-to-date evaluator
    reproduces [Cost.evaluate]'s floats {e bit for bit}; there is no
    drifting accumulator to tolerance-check.  {!self_check} verifies
    exactly that, and {!invalidate} forces the checked full-recompute
    fallback.

    Every instance records its activity (moves, full/delta refreshes,
    cache hits, per-gate work) in an {!Iddq_util.Metrics.t}.

    Not domain-safe: one evaluator must be confined to one domain at a
    time (the shared {!Iddq_util.Metrics.t} may be shared freely). *)

type t

val create :
  ?weights:Cost.weights -> ?metrics:Iddq_util.Metrics.t -> Partition.t -> t
(** Wrap a partition.  The evaluator takes ownership: mutating [p]
    behind its back invalidates the cache silently (use {!invalidate}
    or go through {!move}).  The nominal delay — move-invariant — is
    computed once here.  Defaults: {!Cost.paper_weights},
    {!Iddq_util.Metrics.global}. *)

val partition : t -> Partition.t
(** The wrapped partition (not a copy — read-only access intended;
    mutate it only via {!move}). *)

val weights : t -> Cost.weights

val copy : t -> t
(** Deep copy: partition, caches and dirty state are duplicated, so
    the copy moves and evaluates independently (ES offspring).  The
    metrics instance is shared. *)

val move : t -> gate:int -> target:int -> unit
(** Move a gate to a live module, marking the two touched modules
    dirty and the cached breakdown stale.  Moving a gate to its own
    module is a no-op (nothing dirtied, nothing recorded).  Raises
    like {!Partition.move_gate} on a dead/invalid target. *)

val breakdown : t -> Cost.breakdown
(** The cost of the current partition.  Served from cache when no move
    happened since the last query (recorded as a hit); otherwise
    refreshes the dirty modules (recorded as a delta evaluation, or as
    a full one after {!create}/{!invalidate}). *)

val penalized : t -> float
(** [(breakdown t).penalized] — the optimizer's objective. *)

val invalidate : t -> unit
(** Drop every cached intermediate: the next {!breakdown} recomputes
    everything from the partition, exactly like a fresh evaluator.
    The escape hatch when the partition was mutated directly. *)

val self_check : t -> (unit, string) result
(** Compare {!breakdown} against an independent {!Cost.evaluate} of
    the same partition.  Any difference in [penalized], [total],
    [bic_delay] or [sensor_area] — they must be {e equal}, not merely
    close — is reported.  Test hook; runs a full evaluation. *)
