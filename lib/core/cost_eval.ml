module Charac = Iddq_analysis.Charac
module Timing = Iddq_analysis.Timing
module Technology = Iddq_celllib.Technology
module Sensor = Iddq_bic.Sensor
module Metrics = Iddq_util.Metrics

type t = {
  p : Partition.t;
  weights : Cost.weights;
  metrics : Metrics.t;
  nominal_delay : float;
  gate_delay : float array;  (* degraded delay per gate, valid unless dirty *)
  sensor : Sensor.t option array;  (* per module id; None = dead *)
  dirty : bool array;  (* per module id *)
  mutable all_dirty : bool;
  mutable cached : Cost.breakdown option;
}

let create ?(weights = Cost.paper_weights) ?(metrics = Metrics.global) p =
  let ch = Partition.charac p in
  let n = Charac.num_gates ch in
  (* Dead module ids are never reused and no new ids appear, so the
     id space is bounded by the largest id currently holding a gate. *)
  let k = 1 + List.fold_left Stdlib.max 0 (Partition.module_ids p) in
  {
    p;
    weights;
    metrics;
    nominal_delay = Timing.nominal_delay ch;
    gate_delay = Array.make n 0.0;
    sensor = Array.make k None;
    dirty = Array.make k false;
    all_dirty = true;
    cached = None;
  }

let partition t = t.p
let weights t = t.weights

let copy t =
  {
    p = Partition.copy t.p;
    weights = t.weights;
    metrics = t.metrics;
    nominal_delay = t.nominal_delay;
    gate_delay = Array.copy t.gate_delay;
    sensor = Array.copy t.sensor;
    dirty = Array.copy t.dirty;
    all_dirty = t.all_dirty;
    cached = t.cached;
  }

let invalidate t =
  t.all_dirty <- true;
  t.cached <- None

let move t ~gate ~target =
  let src = Partition.module_of_gate t.p gate in
  if src <> target then begin
    Partition.move_gate t.p gate target;
    t.dirty.(src) <- true;
    t.dirty.(target) <- true;
    t.cached <- None;
    Metrics.record_move t.metrics
  end

(* Identical sizing call to [Partition.sensors] so cached and freshly
   computed sensors agree exactly. *)
let size_sensor p m =
  Sensor.size
    ~technology:(Charac.technology (Partition.charac p))
    ~peak_current:(Partition.max_transient_current p m)
    ~module_rail_capacitance:(Partition.rail_capacitance p m)

let refresh t =
  let t0 = Sys.time () in
  let p = t.p in
  let ch = Partition.charac p in
  let vdd = (Charac.technology ch).Technology.vdd in
  let n = Array.length t.gate_delay in
  let k = Array.length t.dirty in
  let was_full = t.all_dirty in
  if was_full then Array.fill t.dirty 0 k true;
  for m = 0 to k - 1 do
    if t.dirty.(m) then
      t.sensor.(m) <-
        (if Partition.size p m = 0 then None else Some (size_sensor p m))
  done;
  let recomputed = ref 0 in
  for g = 0 to n - 1 do
    let m = Partition.module_of_gate p g in
    if t.dirty.(m) then begin
      incr recomputed;
      let s =
        match t.sensor.(m) with
        | Some s -> s
        | None -> assert false (* a module holding gate [g] is live *)
      in
      (* The same arithmetic [Timing.bic_delay] performs per gate. *)
      let delta =
        Timing.degradation_factor ~vdd ~rs:s.Sensor.rs ~cs:s.Sensor.cs
          ~rg:(Charac.drive_resistance ch g)
          ~cg:(Charac.output_capacitance ch g)
          ~transient_current:(Partition.transient_at p m (Charac.gate_depth ch g))
      in
      t.gate_delay.(g) <- Charac.delay ch g *. delta
    end
  done;
  let bic_delay = Timing.longest_path ch ~gate_delay:(Array.get t.gate_delay) in
  let sensors =
    List.map
      (fun m ->
        match t.sensor.(m) with
        | Some s -> (m, s)
        | None -> assert false)
      (Partition.module_ids p)
  in
  let b =
    Cost.of_components ~weights:t.weights ~sensors ~bic_delay
      ~nominal_delay:t.nominal_delay p
  in
  Array.fill t.dirty 0 k false;
  t.all_dirty <- false;
  t.cached <- Some b;
  let seconds = Sys.time () -. t0 in
  if was_full then Metrics.record_full t.metrics ~gates:n ~seconds
  else Metrics.record_delta t.metrics ~gates:!recomputed ~seconds;
  b

let breakdown t =
  match t.cached with
  | Some b ->
    Metrics.record_hit t.metrics;
    b
  | None -> refresh t

let penalized t = (breakdown t).Cost.penalized

let self_check t =
  let got = breakdown t in
  let want = Cost.evaluate ~weights:t.weights t.p in
  let check name a b rest =
    if a = b then rest ()
    else
      Error
        (Printf.sprintf "Cost_eval.self_check: %s differs: delta=%.17g full=%.17g"
           name a b)
  in
  check "penalized" got.Cost.penalized want.Cost.penalized @@ fun () ->
  check "total" got.Cost.total want.Cost.total @@ fun () ->
  check "bic_delay" got.Cost.bic_delay want.Cost.bic_delay @@ fun () ->
  check "sensor_area" got.Cost.sensor_area want.Cost.sensor_area @@ fun () ->
  Ok ()
