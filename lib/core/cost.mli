(** The paper's global cost function C(Π) = Σ α_i c_i(Π) (§3, §5.1).

    The five metrics:
    - [c1 = log A(Π)], sensor area, [A = Σ_i (A0 + A1 / R_s,i)];
    - [c2 = (D_BIC − D) / D], relative delay overhead;
    - [c3 = log S(Π)], summed intra-module separation;
    - [c4 = log(Σ_i (D_BIC + Δ(τ_i)) / 1 ns)], test-application time
      (per-module measurement times on a log scale, like the other
      extensive metrics; the paper's exact aggregation is lost to
      OCR — DESIGN.md §2);
    - [c5 = K], the number of modules (test clock/output routing).

    The paper's §5.1 weights are
    [C = 9 c1 + 1e5 c2 + c3 + c4 + 10 c5]. *)

type weights = {
  w_area : float;
  w_delay : float;
  w_separation : float;
  w_test_time : float;
  w_module_count : float;
}

val paper_weights : weights
(** (9, 1e5, 1, 1, 10). *)

val equal_weights : weights
(** All 1 — used by the weight-sensitivity ablation. *)

type breakdown = {
  c1_area : float;
  c2_delay : float;
  c3_separation : float;
  c4_test_time : float;
  c5_module_count : float;
  total : float;  (** Weighted sum. *)
  feasible : bool;  (** Γ(Π). *)
  penalized : float;
      (** [total] plus a large smooth penalty when infeasible — what
          the optimizer minimizes. *)
  sensor_area : float;  (** A(Π), linear units. *)
  nominal_delay : float;  (** D (s). *)
  bic_delay : float;  (** D_BIC (s). *)
  test_time_per_vector : float;
      (** One vector with every sensor strobed in parallel (s). *)
  min_discriminability : float;
}

val evaluate :
  ?weights:weights -> ?metrics:Iddq_util.Metrics.t -> Partition.t -> breakdown
(** Cost of a partition.  Uses only the partition's incrementally
    maintained aggregates plus one longest-path pass, so it is cheap
    enough for the optimizer's inner loop.  Default weights:
    {!paper_weights}.  Records one full evaluation in [metrics]
    (default {!Iddq_util.Metrics.global}). *)

val of_components :
  ?weights:weights ->
  sensors:(int * Iddq_bic.Sensor.t) list ->
  bic_delay:float ->
  nominal_delay:float ->
  Partition.t ->
  breakdown
(** Assemble a {!breakdown} from precomputed expensive components: the
    per-module sensor sizings (in ascending module-id order, as
    returned by {!Partition.sensors}) and the two critical-path delays.
    [evaluate] is [of_components] applied to freshly computed
    components; [Cost_eval] applies it to cached ones.  Because both
    paths share this function — and assemble the same component values
    in the same order — an up-to-date cache reproduces [evaluate]'s
    result exactly, not merely approximately.  Records nothing in
    {!Iddq_util.Metrics}; callers account for their own work. *)

val infeasibility_penalty : float
(** Scale of the penalty added per unit of constraint deficit. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
