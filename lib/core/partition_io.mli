(** Textual save/load of partitions, so a CLI run's result can be
    re-examined or handed to downstream tooling.

    Format (line-oriented, [#] comments allowed):
    {v
    # partition of <circuit>
    module 0: net1 net2 net3
    module 1: net4 net5
    v}
    Nets are referenced by name, so the file survives any re-ordering
    of the netlist.

    {b Error contract.}  Malformed text and unreadable files come back
    as [Error] values with line/path context; parsing never raises. *)

val to_string : Partition.t -> string

val of_string :
  Iddq_analysis.Charac.t -> string -> (Partition.t, Iddq_util.Io_error.t) result
(** Fails when a line is malformed, a net is unknown or not a gate, a
    gate is listed twice, or some gate of the circuit is missing. *)

val write_file : string -> Partition.t -> (unit, Iddq_util.Io_error.t) result
(** Atomic write (scratch file + rename): a crash mid-write leaves any
    previous file at this path intact. *)

val read_file :
  Iddq_analysis.Charac.t -> string -> (Partition.t, Iddq_util.Io_error.t) result
(** Descriptor-safe read, then {!of_string}; errors gain the path. *)
