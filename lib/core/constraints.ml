module Charac = Iddq_analysis.Charac
module Technology = Iddq_celllib.Technology

type violation = { module_id : int; got : float; required : float }

let required p =
  (Charac.technology (Partition.charac p)).Technology.required_discriminability

let check p =
  let req = required p in
  List.filter_map
    (fun m ->
      let got = Partition.discriminability p m in
      if got < req then Some { module_id = m; got; required = req } else None)
    (Partition.module_ids p)

let satisfied p = check p = []

let deficit p =
  List.fold_left
    (fun acc v -> acc +. ((v.required -. v.got) /. v.required))
    0.0 (check p)
