(** The paper's constraint evaluation function Γ : P → {0,1} (§2).

    A partition is feasible when every module's discriminability
    meets the technology requirement.  (The virtual-rail constraint
    [R_s,i * î_DD,max,i <= r*] is satisfied by construction: sensors
    are sized as [R_s,i = r* / î_DD,max,i], folding the rail budget
    into the area cost — exactly the simplification of §3.1.) *)

type violation = {
  module_id : int;
  got : float;  (** d(M_i) achieved. *)
  required : float;
}

val check : Partition.t -> violation list
(** Empty when Γ(Π) = 1. *)

val satisfied : Partition.t -> bool

val deficit : Partition.t -> float
(** Total relative shortfall [sum (required - got) / required] over
    violating modules: 0 when feasible, grows smoothly with the
    violation; used as the optimizer's penalty measure. *)
