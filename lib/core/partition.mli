(** A partition of the circuit's gates into disjoint modules, with the
    per-module aggregates the cost function needs maintained
    {e incrementally} under gate moves (the paper's §4.2: "costs are
    recomputed just for the modified modules").

    A partition always covers every gate (each gate belongs to exactly
    one module), so the only mutation is {!move_gate}: reassigning a
    gate to another module.  A module whose last gate moves away dies;
    dead module ids are never reused within one partition value. *)

type t

val create : Iddq_analysis.Charac.t -> assignment:int array -> t
(** [create ch ~assignment] builds a partition from a gate→module map.
    Module ids must be dense [0 .. k-1] with every id non-empty.
    Raises [Invalid_argument] otherwise. *)

val copy : t -> t
(** Deep copy; the copy mutates independently. *)

val charac : t -> Iddq_analysis.Charac.t
val num_gates : t -> int

val num_modules : t -> int
(** Number of live (non-empty) modules, the paper's [K]. *)

val module_ids : t -> int list
(** Live module ids, ascending. *)

val module_of_gate : t -> int -> int
val assignment : t -> int array
(** Fresh copy of the gate→module map. *)

val size : t -> int -> int
(** Gate count of a module (0 if dead). *)

val members : t -> int -> int array
(** Gates of a module, ascending.  O(num_gates). *)

val move_gate : t -> int -> int -> unit
(** [move_gate t g target] reassigns gate [g]; [target] must be a live
    module id (moving to the gate's own module is a no-op).  All
    aggregates are updated incrementally. *)

(** {1 Mutation support} *)

val boundary_gates : t -> int -> int array
(** Gates of the module with at least one (undirected) neighbour gate
    outside the module. *)

val neighbour_modules : t -> int -> int list
(** Live modules other than the gate's own that contain an undirected
    neighbour of the gate. *)

(** {1 Aggregates} (per live module id) *)

val leakage : t -> int -> float
(** I_DDQ,nd of the module. *)

val max_transient_current : t -> int -> float
(** î_DD,max of the module (max of the current profile). *)

val current_profile : t -> int -> float array
(** Copy of the module's per-slot summed peak current. *)

val activity : t -> int -> int -> int
(** [activity t m slot] — n(t): gates of module [m] that can switch
    at [slot]. *)

val transient_at : t -> int -> int -> float
(** [transient_at t m slot] — the module's summed peak current at the
    slot, i(t) (allocation-free {!current_profile} lookup). *)

val rail_capacitance : t -> int -> float
val separation_total : t -> int -> int
(** The paper's S(M) for the module (pairwise separations, cutoff at
    the technology's [p]). *)

val discriminability : t -> int -> float
(** [d(M) = I_DDQ,th / I_DDQ,nd]. *)

val min_discriminability : t -> float
(** Minimum over live modules; [infinity] when no module. *)

val module_components : t -> int -> int
(** Number of connected components the module's gates form in the
    undirected circuit graph — 1 for a layout-friendly, contiguous
    module.  (The ES's separation cost c3 pushes toward 1; this is
    the report-side check.) *)

(** {1 Whole-partition helpers} *)

val sensors : t -> (int * Iddq_bic.Sensor.t) list
(** Sized sensor per live module. *)

val check_consistent : t -> (unit, string) result
(** Recomputes every aggregate from scratch and compares with the
    incrementally maintained state (test hook). *)

val pp : Format.formatter -> t -> unit
(** One line per module: id, size, discriminability, î_DD,max. *)
