module Charac = Iddq_analysis.Charac
module Timing = Iddq_analysis.Timing
module Sensor = Iddq_bic.Sensor
module Test_time = Iddq_bic.Test_time

type weights = {
  w_area : float;
  w_delay : float;
  w_separation : float;
  w_test_time : float;
  w_module_count : float;
}

let paper_weights =
  {
    w_area = 9.0;
    w_delay = 1.0e5;
    w_separation = 1.0;
    w_test_time = 1.0;
    w_module_count = 10.0;
  }

let equal_weights =
  {
    w_area = 1.0;
    w_delay = 1.0;
    w_separation = 1.0;
    w_test_time = 1.0;
    w_module_count = 1.0;
  }

type breakdown = {
  c1_area : float;
  c2_delay : float;
  c3_separation : float;
  c4_test_time : float;
  c5_module_count : float;
  total : float;
  feasible : bool;
  penalized : float;
  sensor_area : float;
  nominal_delay : float;
  bic_delay : float;
  test_time_per_vector : float;
  min_discriminability : float;
}

let infeasibility_penalty = 1.0e7

(* log clipped away from -inf for degenerate (empty/zero) values *)
let safe_log x = if x <= 0.0 then 0.0 else log x

(* Assembly of the breakdown from the expensive pieces (the sensor
   list and the two delays).  Shared — with identical operation order —
   by the full [evaluate] below and the incremental [Cost_eval], so a
   delta evaluation that reproduces the same components reproduces the
   full evaluation's floats bit for bit. *)
let of_components ?(weights = paper_weights) ~sensors ~bic_delay ~nominal_delay
    p =
  let tech = Charac.technology (Partition.charac p) in
  let sensor_area =
    List.fold_left (fun acc (_, s) -> acc +. s.Sensor.area) 0.0 sensors
  in
  let c1_area = safe_log sensor_area in
  let c2_delay =
    if nominal_delay > 0.0 then (bic_delay -. nominal_delay) /. nominal_delay
    else 0.0
  in
  let separation_sum =
    List.fold_left
      (fun acc m -> acc +. float_of_int (Partition.separation_total p m))
      0.0 (Partition.module_ids p)
  in
  let c3_separation = safe_log separation_sum in
  let sensor_list = List.map snd sensors in
  let summed = Test_time.summed_module_times tech ~d_bic:bic_delay sensor_list in
  let c4_test_time = safe_log (summed /. 1.0e-9) in
  let c5_module_count = float_of_int (Partition.num_modules p) in
  let total =
    (weights.w_area *. c1_area)
    +. (weights.w_delay *. c2_delay)
    +. (weights.w_separation *. c3_separation)
    +. (weights.w_test_time *. c4_test_time)
    +. (weights.w_module_count *. c5_module_count)
  in
  let deficit = Constraints.deficit p in
  let feasible = deficit = 0.0 in
  {
    c1_area;
    c2_delay;
    c3_separation;
    c4_test_time;
    c5_module_count;
    total;
    feasible;
    penalized = total +. (infeasibility_penalty *. deficit);
    sensor_area;
    nominal_delay;
    bic_delay;
    test_time_per_vector = Test_time.per_vector tech ~d_bic:bic_delay sensor_list;
    min_discriminability = Partition.min_discriminability p;
  }

let evaluate ?weights ?(metrics = Iddq_util.Metrics.global) p =
  let t0 = Sys.time () in
  let ch = Partition.charac p in
  let sensors = Partition.sensors p in
  let nominal_delay = Timing.nominal_delay ch in
  (* per-module sensor lookup tables for the degradation model *)
  let max_id =
    List.fold_left (fun acc (m, _) -> Stdlib.max acc m) 0 sensors
  in
  let rs_tab = Array.make (max_id + 1) Sensor.max_rs in
  let cs_tab = Array.make (max_id + 1) 0.0 in
  List.iter
    (fun (m, s) ->
      rs_tab.(m) <- s.Sensor.rs;
      cs_tab.(m) <- s.Sensor.cs)
    sensors;
  let module_of_gate = Partition.assignment p in
  let bic_delay =
    Timing.bic_delay ch ~module_of_gate
      ~rs_of_module:(fun m -> rs_tab.(m))
      ~cs_of_module:(fun m -> cs_tab.(m))
      ~module_current:(fun m slot -> Partition.transient_at p m slot)
  in
  let b = of_components ?weights ~sensors ~bic_delay ~nominal_delay p in
  Iddq_util.Metrics.record_full metrics ~gates:(Charac.num_gates ch)
    ~seconds:(Sys.time () -. t0);
  b

let pp_breakdown fmt b =
  Format.fprintf fmt
    "c1=%.4f c2=%.3e c3=%.4f c4=%.4f c5=%.0f total=%.4f%s A=%.4e D=%.3es \
     Dbic=%.3es dmin=%.2f"
    b.c1_area b.c2_delay b.c3_separation b.c4_test_time b.c5_module_count
    b.total
    (if b.feasible then "" else " INFEASIBLE")
    b.sensor_area b.nominal_delay b.bic_delay b.min_discriminability
