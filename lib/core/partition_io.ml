module Charac = Iddq_analysis.Charac
module Circuit = Iddq_netlist.Circuit
module Io = Iddq_util.Io
module Io_error = Iddq_util.Io_error

let to_string p =
  let ch = Partition.charac p in
  let c = Charac.circuit ch in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# partition of %s\n" (Circuit.name c));
  List.iteri
    (fun dense m ->
      Buffer.add_string buf (Printf.sprintf "module %d:" dense);
      Array.iter
        (fun g ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (Circuit.node_name c (Circuit.node_of_gate c g)))
        (Partition.members p m);
      Buffer.add_char buf '\n')
    (Partition.module_ids p);
  Buffer.contents buf

let of_string ch text =
  let c = Charac.circuit ch in
  let n = Charac.num_gates ch in
  let assignment = Array.make n (-1) in
  let exception Bad of int option * string in
  try
    let module_count = ref 0 in
    List.iteri
      (fun i raw ->
        let lineno = i + 1 in
        let line =
          match String.index_opt raw '#' with
          | None -> String.trim raw
          | Some j -> String.trim (String.sub raw 0 j)
        in
        if line <> "" then begin
          match String.index_opt line ':' with
          | None -> raise (Bad (Some lineno, "expected 'module K: nets'"))
          | Some colon ->
            let header = String.trim (String.sub line 0 colon) in
            (match String.split_on_char ' ' header with
            | [ "module"; k ] when int_of_string_opt k = Some !module_count -> ()
            | [ "module"; _ ] ->
              raise (Bad (Some lineno, "module ids must be dense and in order"))
            | _ ->
              raise
                (Bad
                   (Some lineno, Printf.sprintf "bad module header %S" header)));
            let m = !module_count in
            incr module_count;
            let nets =
              String.sub line (colon + 1) (String.length line - colon - 1)
              |> String.split_on_char ' '
              |> List.map String.trim
              |> List.filter (fun s -> s <> "")
            in
            if nets = [] then raise (Bad (Some lineno, "empty module"));
            List.iter
              (fun net ->
                match Circuit.node_id_of_name c net with
                | None ->
                  raise
                    (Bad (Some lineno, Printf.sprintf "unknown net %S" net))
                | Some id ->
                  if not (Circuit.is_gate c id) then
                    raise
                      (Bad
                         ( Some lineno,
                           Printf.sprintf "%S is a primary input" net ));
                  let g = Circuit.gate_of_node c id in
                  if assignment.(g) >= 0 then
                    raise
                      (Bad (Some lineno, Printf.sprintf "%S listed twice" net));
                  assignment.(g) <- m)
              nets
        end)
      (String.split_on_char '\n' text);
    if !module_count = 0 then raise (Bad (None, "no modules"));
    (match
       Array.to_seq assignment
       |> Seq.mapi (fun g m -> (g, m))
       |> Seq.find (fun (_, m) -> m < 0)
     with
    | Some (g, _) ->
      raise
        (Bad
           ( None,
             Printf.sprintf "gate %S is not assigned to any module"
               (Circuit.node_name c (Circuit.node_of_gate c g)) ))
    | None -> ());
    Ok (Partition.create ch ~assignment)
  with Bad (line, msg) -> Error (Io_error.make ?line msg)

let write_file path p = Io.write_file_atomic path (to_string p)

let read_file ch path =
  match Io.read_file path with
  | Error e -> Error e
  | Ok text -> Result.map_error (Io_error.with_path path) (of_string ch text)
