module Charac = Iddq_analysis.Charac
module Circuit = Iddq_netlist.Circuit

let to_string p =
  let ch = Partition.charac p in
  let c = Charac.circuit ch in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# partition of %s\n" (Circuit.name c));
  List.iteri
    (fun dense m ->
      Buffer.add_string buf (Printf.sprintf "module %d:" dense);
      Array.iter
        (fun g ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (Circuit.node_name c (Circuit.node_of_gate c g)))
        (Partition.members p m);
      Buffer.add_char buf '\n')
    (Partition.module_ids p);
  Buffer.contents buf

let of_string ch text =
  let c = Charac.circuit ch in
  let n = Charac.num_gates ch in
  let assignment = Array.make n (-1) in
  let exception Bad of string in
  try
    let module_count = ref 0 in
    List.iteri
      (fun i raw ->
        let lineno = i + 1 in
        let line =
          match String.index_opt raw '#' with
          | None -> String.trim raw
          | Some j -> String.trim (String.sub raw 0 j)
        in
        if line <> "" then begin
          match String.index_opt line ':' with
          | None -> raise (Bad (Printf.sprintf "line %d: expected 'module K: nets'" lineno))
          | Some colon ->
            let header = String.trim (String.sub line 0 colon) in
            (match String.split_on_char ' ' header with
            | [ "module"; k ] when int_of_string_opt k = Some !module_count -> ()
            | [ "module"; _ ] ->
              raise (Bad (Printf.sprintf "line %d: module ids must be dense and in order" lineno))
            | _ -> raise (Bad (Printf.sprintf "line %d: bad module header %S" lineno header)));
            let m = !module_count in
            incr module_count;
            let nets =
              String.sub line (colon + 1) (String.length line - colon - 1)
              |> String.split_on_char ' '
              |> List.map String.trim
              |> List.filter (fun s -> s <> "")
            in
            if nets = [] then
              raise (Bad (Printf.sprintf "line %d: empty module" lineno));
            List.iter
              (fun net ->
                match Circuit.node_id_of_name c net with
                | None -> raise (Bad (Printf.sprintf "line %d: unknown net %S" lineno net))
                | Some id ->
                  if not (Circuit.is_gate c id) then
                    raise (Bad (Printf.sprintf "line %d: %S is a primary input" lineno net));
                  let g = Circuit.gate_of_node c id in
                  if assignment.(g) >= 0 then
                    raise (Bad (Printf.sprintf "line %d: %S listed twice" lineno net));
                  assignment.(g) <- m)
              nets
        end)
      (String.split_on_char '\n' text);
    if !module_count = 0 then raise (Bad "no modules");
    (match
       Array.to_seq assignment
       |> Seq.mapi (fun g m -> (g, m))
       |> Seq.find (fun (_, m) -> m < 0)
     with
    | Some (g, _) ->
      raise
        (Bad
           (Printf.sprintf "gate %S is not assigned to any module"
              (Circuit.node_name c (Circuit.node_of_gate c g))))
    | None -> ());
    Ok (Partition.create ch ~assignment)
  with Bad msg -> Error msg

let write_file path p =
  let oc = open_out path in
  output_string oc (to_string p);
  close_out oc

let read_file ch path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string ch text
