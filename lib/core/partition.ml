module Charac = Iddq_analysis.Charac
module Switching = Iddq_analysis.Switching
module Graph_algo = Iddq_netlist.Graph_algo
module Technology = Iddq_celllib.Technology
module Sensor = Iddq_bic.Sensor

type module_state = {
  mutable gate_count : int;
  mutable m_leakage : float;
  mutable m_rail_cap : float;
  mutable current_profile : float array; (* slot -> summed peak current *)
  mutable count_profile : int array; (* slot -> switching gate count *)
  mutable sep_total : int;
  mutable live : bool;
}

type t = {
  ch : Charac.t;
  assignment : int array;
  mutable mods : module_state array;
  mutable live_count : int;
  mutable scratch : Graph_algo.bfs option;
      (* lazily created BFS workspace for incremental moves; never
         shared across partitions ([copy] drops it) so domain-parallel
         offspring costing stays race-free *)
}

let scratch_bfs t =
  match t.scratch with
  | Some b -> b
  | None ->
    let b = Graph_algo.make_bfs (Charac.undirected t.ch) in
    t.scratch <- Some b;
    b

let empty_module depth =
  {
    gate_count = 0;
    m_leakage = 0.0;
    m_rail_cap = 0.0;
    current_profile = Array.make (depth + 1) 0.0;
    count_profile = Array.make (depth + 1) 0;
    sep_total = 0;
    live = false;
  }

let copy_module m =
  {
    gate_count = m.gate_count;
    m_leakage = m.m_leakage;
    m_rail_cap = m.m_rail_cap;
    current_profile = Array.copy m.current_profile;
    count_profile = Array.copy m.count_profile;
    sep_total = m.sep_total;
    live = m.live;
  }

let add_gate_aggregates ch st g =
  st.gate_count <- st.gate_count + 1;
  st.m_leakage <- st.m_leakage +. Charac.leakage ch g;
  st.m_rail_cap <- st.m_rail_cap +. Charac.rail_capacitance ch g;
  let ipk = Charac.peak_current ch g in
  Charac.iter_switch_slots ch g (fun slot ->
      st.current_profile.(slot) <- st.current_profile.(slot) +. ipk;
      st.count_profile.(slot) <- st.count_profile.(slot) + 1)

let remove_gate_aggregates ch st g =
  st.gate_count <- st.gate_count - 1;
  st.m_leakage <- st.m_leakage -. Charac.leakage ch g;
  st.m_rail_cap <- st.m_rail_cap -. Charac.rail_capacitance ch g;
  let ipk = Charac.peak_current ch g in
  Charac.iter_switch_slots ch g (fun slot ->
      st.current_profile.(slot) <- st.current_profile.(slot) -. ipk;
      st.count_profile.(slot) <- st.count_profile.(slot) - 1)

(* Full S(M) from scratch for every module of an assignment.  Any gate
   outside the BFS horizon sits at exactly [cutoff], so the sum over
   partners [h > g] in module [m] is

     cutoff * |{h > g : assignment h = m}|
       - sum over *visited* such h of (cutoff - sep h)

   — identical integer arithmetic to summing [sep h] over a dense
   array, but touching only the visited set.  [rem] counts the
   partners still ahead of [g], maintained decrementally. *)
let separation_totals ch assignment k =
  let u = Charac.undirected ch in
  let cutoff = Charac.separation_cutoff ch in
  let totals = Array.make k 0 in
  let rem = Array.make k 0 in
  Array.iter (fun m -> rem.(m) <- rem.(m) + 1) assignment;
  let b = Graph_algo.make_bfs u in
  let n = Array.length assignment in
  for g = 0 to n - 1 do
    let m = assignment.(g) in
    rem.(m) <- rem.(m) - 1;
    Graph_algo.bfs_from u b ~cutoff g;
    let adjust = ref 0 in
    for i = 0 to Graph_algo.bfs_visited_count b - 1 do
      let h = Graph_algo.bfs_visited b i in
      if h > g && assignment.(h) = m then
        adjust := !adjust + (cutoff - Graph_algo.bfs_separation b ~cutoff h)
    done;
    totals.(m) <- totals.(m) + (cutoff * rem.(m)) - !adjust
  done;
  totals

let create ch ~assignment =
  let n = Charac.num_gates ch in
  if Array.length assignment <> n then
    invalid_arg "Partition.create: assignment length mismatch";
  let k =
    Array.fold_left (fun acc m -> Stdlib.max acc (m + 1)) 0 assignment
  in
  if k = 0 then invalid_arg "Partition.create: no modules";
  Array.iter
    (fun m ->
      if m < 0 || m >= k then invalid_arg "Partition.create: bad module id")
    assignment;
  let depth = Charac.depth ch in
  let mods = Array.init k (fun _ -> empty_module depth) in
  Array.iteri
    (fun g m ->
      mods.(m).live <- true;
      add_gate_aggregates ch mods.(m) g)
    assignment;
  if Array.exists (fun st -> not st.live) mods then
    invalid_arg "Partition.create: module ids must be dense (no empty id)";
  let totals = separation_totals ch assignment k in
  Array.iteri (fun m s -> mods.(m).sep_total <- s) totals;
  { ch; assignment = Array.copy assignment; mods; live_count = k; scratch = None }

let copy t =
  {
    ch = t.ch;
    assignment = Array.copy t.assignment;
    mods = Array.map copy_module t.mods;
    live_count = t.live_count;
    scratch = None;
  }

let charac t = t.ch
let num_gates t = Array.length t.assignment
let num_modules t = t.live_count

let module_ids t =
  let ids = ref [] in
  for m = Array.length t.mods - 1 downto 0 do
    if t.mods.(m).live then ids := m :: !ids
  done;
  !ids

let module_of_gate t g = t.assignment.(g)
let assignment t = Array.copy t.assignment
let size t m = if t.mods.(m).live then t.mods.(m).gate_count else 0

let members t m =
  let out = ref [] in
  for g = Array.length t.assignment - 1 downto 0 do
    if t.assignment.(g) = m then out := g :: !out
  done;
  Array.of_list !out

let move_gate t g target =
  let src = t.assignment.(g) in
  if target <> src then begin
    if target < 0 || target >= Array.length t.mods || not t.mods.(target).live
    then invalid_arg "Partition.move_gate: target not a live module";
    let u = Charac.undirected t.ch in
    let cutoff = Charac.separation_cutoff t.ch in
    let b = scratch_bfs t in
    Graph_algo.bfs_from u b ~cutoff g;
    let src_st = t.mods.(src) and tgt_st = t.mods.(target) in
    (* separation deltas against the *current* membership (g still in
       src).  Same out-of-horizon identity as [separation_totals]: the
       cutoff-valued partners contribute through the module sizes, the
       BFS corrects only the visited ones — O(visited), not O(gates). *)
    let lost_adj = ref 0 and gained_adj = ref 0 in
    for i = 0 to Graph_algo.bfs_visited_count b - 1 do
      let h = Graph_algo.bfs_visited b i in
      if h <> g then begin
        let m = t.assignment.(h) in
        if m = src then
          lost_adj := !lost_adj + (cutoff - Graph_algo.bfs_separation b ~cutoff h)
        else if m = target then
          gained_adj :=
            !gained_adj + (cutoff - Graph_algo.bfs_separation b ~cutoff h)
      end
    done;
    let lost = (cutoff * (src_st.gate_count - 1)) - !lost_adj in
    let gained = (cutoff * tgt_st.gate_count) - !gained_adj in
    remove_gate_aggregates t.ch src_st g;
    src_st.sep_total <- src_st.sep_total - lost;
    add_gate_aggregates t.ch tgt_st g;
    tgt_st.sep_total <- tgt_st.sep_total + gained;
    t.assignment.(g) <- target;
    if src_st.gate_count = 0 then begin
      src_st.live <- false;
      src_st.sep_total <- 0;
      t.live_count <- t.live_count - 1
    end
  end

let boundary_gates t m =
  let u = Charac.undirected t.ch in
  let out = ref [] in
  for g = Array.length t.assignment - 1 downto 0 do
    if
      t.assignment.(g) = m
      && Graph_algo.exists_neighbour u g (fun h -> t.assignment.(h) <> m)
    then out := g :: !out
  done;
  Array.of_list !out

let neighbour_modules t g =
  let u = Charac.undirected t.ch in
  let own = t.assignment.(g) in
  let seen = Hashtbl.create 4 in
  Graph_algo.iter_neighbours u g (fun h ->
      let m = t.assignment.(h) in
      if m <> own then Hashtbl.replace seen m ());
  List.sort Stdlib.compare (Hashtbl.fold (fun m () acc -> m :: acc) seen [])

let leakage t m = t.mods.(m).m_leakage

let max_transient_current t m =
  Array.fold_left Stdlib.max 0.0 t.mods.(m).current_profile

let current_profile t m = Array.copy t.mods.(m).current_profile
let activity t m slot = t.mods.(m).count_profile.(slot)
let transient_at t m slot = t.mods.(m).current_profile.(slot)
let rail_capacitance t m = t.mods.(m).m_rail_cap
let separation_total t m = t.mods.(m).sep_total

let discriminability t m =
  let nd = leakage t m in
  if nd <= 0.0 then infinity
  else (Charac.technology t.ch).Technology.iddq_threshold /. nd

let min_discriminability t =
  List.fold_left
    (fun acc m -> Stdlib.min acc (discriminability t m))
    infinity (module_ids t)

let module_components t m =
  let u = Charac.undirected t.ch in
  let gates = members t m in
  let index = Hashtbl.create (Array.length gates) in
  Array.iteri (fun i g -> Hashtbl.replace index g i) gates;
  let seen = Array.make (Array.length gates) false in
  let components = ref 0 in
  Array.iteri
    (fun i g ->
      if not seen.(i) then begin
        incr components;
        let q = Queue.create () in
        seen.(i) <- true;
        Queue.add g q;
        while not (Queue.is_empty q) do
          let v = Queue.pop q in
          Graph_algo.iter_neighbours u v (fun w ->
              match Hashtbl.find_opt index w with
              | Some j when not seen.(j) ->
                seen.(j) <- true;
                Queue.add w q
              | Some _ | None -> ())
        done
      end)
    gates;
  !components

let sensors t =
  List.map
    (fun m ->
      ( m,
        Sensor.size
          ~technology:(Charac.technology t.ch)
          ~peak_current:(max_transient_current t m)
          ~module_rail_capacitance:(rail_capacitance t m) ))
    (module_ids t)

let check_consistent t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let close a b =
    let scale = Stdlib.max 1.0 (Stdlib.max (Float.abs a) (Float.abs b)) in
    Float.abs (a -. b) <= 1e-9 *. scale
  in
  let rec check = function
    | [] -> Ok ()
    | m :: rest ->
      let gates = members t m in
      if Array.length gates = 0 then err "live module %d is empty" m
      else if size t m <> Array.length gates then
        err "module %d: size %d but %d members" m (size t m)
          (Array.length gates)
      else if not (close (leakage t m) (Switching.leakage t.ch gates)) then
        err "module %d: leakage drifted" m
      else if
        not
          (close (rail_capacitance t m) (Switching.rail_capacitance t.ch gates))
      then err "module %d: rail capacitance drifted" m
      else begin
        let profile = Switching.current_profile t.ch gates in
        let counts = Switching.count_profile t.ch gates in
        let st = t.mods.(m) in
        let profile_ok =
          Array.for_all2 close profile st.current_profile
          && counts = st.count_profile
        in
        if not profile_ok then err "module %d: switching profile drifted" m
        else begin
          let s =
            Graph_algo.module_separation (Charac.undirected t.ch)
              ~cutoff:(Charac.separation_cutoff t.ch)
              gates
          in
          if s <> separation_total t m then
            err "module %d: separation %d expected %d" m (separation_total t m)
              s
          else check rest
        end
      end
  in
  let live = module_ids t in
  if List.length live <> t.live_count then err "live_count drifted"
  else if
    Array.exists
      (fun m -> not (List.mem m live))
      t.assignment
  then err "a gate is assigned to a dead module"
  else check live

let pp fmt t =
  List.iter
    (fun m ->
      Format.fprintf fmt "module %d: %d gates, d=%.2f, imax=%.3e A, S=%d@." m
        (size t m) (discriminability t m)
        (max_transient_current t m)
        (separation_total t m))
    (module_ids t)
