module Circuit = Iddq_netlist.Circuit
module Charac = Iddq_analysis.Charac
module Technology = Iddq_celllib.Technology
module Logic_sim = Iddq_patterns.Logic_sim
module P = Iddq_patterns.Parallel_sim
module Partition = Iddq_core.Partition
module Bitvec = Iddq_util.Bitvec
module Metrics = Iddq_util.Metrics
module Domain_pool = Iddq_util.Domain_pool

type matrix = { n_vectors : int; rows : Bitvec.t array }

let equal a b =
  a.n_vectors = b.n_vectors
  && Array.length a.rows = Array.length b.rows
  && Array.for_all2 Bitvec.equal a.rows b.rows

let activation_word fault ~good =
  match fault with
  | Fault.Bridge (a, b) -> Int64.logxor good.(a) good.(b)
  | Fault.Gate_oxide_short (id, polarity) ->
    if polarity then good.(id) else Int64.lognot good.(id)
  | Fault.Floating_gate _ -> Int64.minus_one

let measurable p (inj : Fault.injected) =
  let ch = Partition.charac p in
  let c = Charac.circuit ch in
  let tech = Charac.technology ch in
  let m = Partition.module_of_gate p (Fault.location c inj.Fault.fault) in
  Partition.leakage p m +. inj.Fault.defect_current
  >= tech.Technology.iddq_threshold

let parallel_ranges ~domains n f =
  let d = Stdlib.max 1 (Stdlib.min domains n) in
  if d <= 1 then begin
    if n > 0 then f 0 n
  end
  else begin
    let per = (n + d - 1) / d in
    let spawned =
      List.init (d - 1) (fun i ->
          let lo = (i + 1) * per in
          let hi = Stdlib.min n (lo + per) in
          Domain.spawn (fun () -> if lo < hi then f lo hi))
    in
    f 0 (Stdlib.min n per);
    List.iter Domain.join spawned
  end

let good_values ?(domains = 1) ?metrics c packed =
  let nb = P.num_blocks packed in
  let goods = Array.make nb [||] in
  parallel_ranges ~domains nb (fun lo hi ->
      for b = lo to hi - 1 do
        goods.(b) <- P.eval c (P.block packed b)
      done);
  Option.iter
    (fun m -> Metrics.record_fault_sim m ~blocks:nb ~fault_blocks:0 ~dropped:0)
    metrics;
  goods

(* Good-machine words for every block in one flat GC-opaque buffer,
   {e node-major}: node [id]'s word for block [b] at
   [id * num_blocks + b].  The striped levelized kernel fills it [W]
   consecutive blocks per gate visit; the layout also makes every
   fault sweep below a contiguous per-row scan.  Stripes (and level
   slices) write disjoint regions — the shared buffer is each
   domain's scratch. *)
let good_values_flat ?(domains = 1) ?metrics ?pool ?stripe c packed =
  let nb = P.num_blocks packed in
  let n = Circuit.num_nodes c in
  let goods : P.ba =
    Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout (nb * n)
  in
  (match pool with
  | Some pool -> P.eval_all_into ~pool ?stripe c packed ~dst:goods
  | None ->
    if domains <= 1 then P.eval_all_into ?stripe c packed ~dst:goods
    else
      Domain_pool.with_pool ~domains (fun pool ->
          P.eval_all_into ~pool ?stripe c packed ~dst:goods));
  Option.iter
    (fun m -> Metrics.record_fault_sim m ~blocks:nb ~fault_blocks:0 ~dropped:0)
    metrics;
  goods

(* One fault's activation word for block [b], phrased so every load,
   [Int64] op and store fuses into a single expression — the fault
   sweep allocates nothing on the minor heap.  The good machine is
   node-major, so each sweep reads one or two contiguous [nb]-word
   rows.  [mask] is the block's active mask, which also maintains the
   rows' tail-bit invariant. *)

let sweep_bridge_row row goods ~nb ~masks ~a ~b =
  for blk = 0 to nb - 1 do
    Bigarray.Array1.unsafe_set row blk
      (Int64.logand
         (Int64.logxor
            (Bigarray.Array1.unsafe_get goods ((a * nb) + blk))
            (Bigarray.Array1.unsafe_get goods ((b * nb) + blk)))
         (Array.unsafe_get masks blk))
  done

let sweep_gos_row row goods ~nb ~masks ~id ~polarity =
  if polarity then
    for blk = 0 to nb - 1 do
      Bigarray.Array1.unsafe_set row blk
        (Int64.logand
           (Bigarray.Array1.unsafe_get goods ((id * nb) + blk))
           (Array.unsafe_get masks blk))
    done
  else
    for blk = 0 to nb - 1 do
      Bigarray.Array1.unsafe_set row blk
        (Int64.logand
           (Int64.lognot (Bigarray.Array1.unsafe_get goods ((id * nb) + blk)))
           (Array.unsafe_get masks blk))
    done

let sweep_floating_row row ~nb ~masks =
  for blk = 0 to nb - 1 do
    Bigarray.Array1.unsafe_set row blk (Array.unsafe_get masks blk)
  done

(* Faults are scheduled as round-robin chunks over the pool rather
   than fixed per-domain ranges: fault dropping (and the measurable
   filter) makes per-fault cost wildly uneven, and a domain whose
   static range emptied early used to idle.  Chunks small enough to
   rebalance, large enough that one atomic claim amortizes. *)
let fault_chunk = 64

let chunk_count nf = (nf + fault_chunk - 1) / fault_chunk

(* Full matrix: every measurable fault visits every block (no
   dropping — callers want the complete detection sets).  Writes are
   disjoint per fault, so the fault chunks need no synchronization. *)
let detection_matrix_with ?(domains = 1) ?metrics c ~measurable ~vectors
    ~faults =
  Domain_pool.with_pool ~domains @@ fun pool ->
  let packed = P.pack_all vectors in
  let goods = good_values_flat ~pool ?metrics c packed in
  let faults = Array.of_list faults in
  let nf = Array.length faults in
  let nb = P.num_blocks packed in
  let nv = P.n_vectors packed in
  let masks = Array.init nb (fun b -> P.block_mask packed b) in
  let rows = Array.init nf (fun _ -> Bitvec.create nv) in
  let fault_blocks = Atomic.make 0 in
  let steals =
    Domain_pool.run pool ~chunks:(chunk_count nf) (fun ch ->
        let lo = ch * fault_chunk in
        let hi = Stdlib.min nf (lo + fault_chunk) in
        let fb = ref 0 in
        for f = lo to hi - 1 do
          let inj = faults.(f) in
          if measurable inj then begin
            let row = Bitvec.unsafe_words rows.(f) in
            (match inj.Fault.fault with
            | Fault.Bridge (a, b) -> sweep_bridge_row row goods ~nb ~masks ~a ~b
            | Fault.Gate_oxide_short (id, polarity) ->
              sweep_gos_row row goods ~nb ~masks ~id ~polarity
            | Fault.Floating_gate _ -> sweep_floating_row row ~nb ~masks);
            fb := !fb + nb
          end
        done;
        ignore (Atomic.fetch_and_add fault_blocks !fb))
  in
  Option.iter
    (fun m ->
      Metrics.record_fault_sim ~steals m ~blocks:0
        ~fault_blocks:(Atomic.get fault_blocks) ~dropped:0)
    metrics;
  { n_vectors = nv; rows }

(* First detections only: fault dropping — a detected fault never
   touches another block.  The activation word is recomputed once more
   on the (rare) detecting block so the scan itself stays unboxed. *)
let first_detections_with ?(domains = 1) ?metrics c ~measurable ~vectors
    ~faults =
  Domain_pool.with_pool ~domains @@ fun pool ->
  let packed = P.pack_all vectors in
  let goods = good_values_flat ~pool ?metrics c packed in
  let faults = Array.of_list faults in
  let nf = Array.length faults in
  let nb = P.num_blocks packed in
  let masks = Array.init nb (fun b -> P.block_mask packed b) in
  let act_word blk (fault : Fault.t) =
    match fault with
    | Fault.Bridge (a, b) ->
      Int64.logand
        (Int64.logxor
           (Bigarray.Array1.unsafe_get goods ((a * nb) + blk))
           (Bigarray.Array1.unsafe_get goods ((b * nb) + blk)))
        (Array.unsafe_get masks blk)
    | Fault.Gate_oxide_short (id, polarity) ->
      if polarity then
        Int64.logand
          (Bigarray.Array1.unsafe_get goods ((id * nb) + blk))
          (Array.unsafe_get masks blk)
      else
        Int64.logand
          (Int64.lognot (Bigarray.Array1.unsafe_get goods ((id * nb) + blk)))
          (Array.unsafe_get masks blk)
    | Fault.Floating_gate _ -> Array.unsafe_get masks blk
  in
  let first = Array.make nf (-1) in
  let fault_blocks = Atomic.make 0 and dropped = Atomic.make 0 in
  let steals =
    Domain_pool.run pool ~chunks:(chunk_count nf) (fun ch ->
        let lo = ch * fault_chunk in
        let hi = Stdlib.min nf (lo + fault_chunk) in
        let fb = ref 0 and dr = ref 0 in
        for f = lo to hi - 1 do
          let inj = faults.(f) in
          if measurable inj then begin
            let rec scan b =
              if b < nb then begin
                incr fb;
                if act_word b inj.Fault.fault <> 0L then begin
                  first.(f) <-
                    (b * 64) + Bitvec.ctz64 (act_word b inj.Fault.fault);
                  incr dr
                end
                else scan (b + 1)
              end
            in
            scan 0
          end
        done;
        ignore (Atomic.fetch_and_add fault_blocks !fb);
        ignore (Atomic.fetch_and_add dropped !dr))
  in
  Option.iter
    (fun m ->
      Metrics.record_fault_sim ~steals m ~blocks:0
        ~fault_blocks:(Atomic.get fault_blocks) ~dropped:(Atomic.get dropped))
    metrics;
  first

(* The pre-CSR packed engine, verbatim: boxed per-block node words via
   {!P.eval}, one [activation_word] per (fault, block).  Kept as the
   oracle the flat kernel is differentially pinned to (tests and the
   [kernels] bench). *)
let detection_matrix_boxed_with ?(domains = 1) ?metrics c ~measurable ~vectors
    ~faults =
  let packed = P.pack_all vectors in
  let goods = good_values ~domains ?metrics c packed in
  let faults = Array.of_list faults in
  let nf = Array.length faults in
  let nb = P.num_blocks packed in
  let nv = P.n_vectors packed in
  let rows = Array.init nf (fun _ -> Bitvec.create nv) in
  parallel_ranges ~domains nf (fun lo hi ->
      let fault_blocks = ref 0 in
      for f = lo to hi - 1 do
        let inj = faults.(f) in
        if measurable inj then begin
          let row = rows.(f) in
          for b = 0 to nb - 1 do
            Bitvec.set_word row b
              (Int64.logand
                 (activation_word inj.Fault.fault ~good:goods.(b))
                 (P.block_mask packed b))
          done;
          fault_blocks := !fault_blocks + nb
        end
      done;
      Option.iter
        (fun m ->
          Metrics.record_fault_sim m ~blocks:0 ~fault_blocks:!fault_blocks
            ~dropped:0)
        metrics);
  { n_vectors = nv; rows }

let circuit_of p = Charac.circuit (Partition.charac p)

let detection_matrix ?domains ?metrics p ~vectors ~faults =
  detection_matrix_with ?domains ?metrics (circuit_of p)
    ~measurable:(measurable p) ~vectors ~faults

let detection_matrix_boxed ?domains ?metrics p ~vectors ~faults =
  detection_matrix_boxed_with ?domains ?metrics (circuit_of p)
    ~measurable:(measurable p) ~vectors ~faults

let first_detections ?domains ?metrics p ~vectors ~faults =
  first_detections_with ?domains ?metrics (circuit_of p)
    ~measurable:(measurable p) ~vectors ~faults

(* The original vector-at-a-time path, verbatim semantics: one full
   logic simulation per vector, one activation query per (fault,
   vector).  The differential tests pin the packed engine to this. *)
let detection_matrix_scalar p ~vectors ~faults =
  let c = circuit_of p in
  let evaluated = Array.map (Logic_sim.eval c) vectors in
  let nv = Array.length vectors in
  let rows =
    List.map
      (fun (inj : Fault.injected) ->
        let row = Bitvec.create nv in
        if measurable p inj then
          Array.iteri
            (fun v values ->
              if Fault.activated c inj.Fault.fault values then Bitvec.set row v)
            evaluated;
        row)
      faults
  in
  { n_vectors = nv; rows = Array.of_list rows }
