module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate
module Graph_algo = Iddq_netlist.Graph_algo
module Logic_sim = Iddq_patterns.Logic_sim

let is_feedback c a b =
  if a = b then false
  else begin
    let from_a = Graph_algo.reachable_from c [| a |] in
    let from_b = Graph_algo.reachable_from c [| b |] in
    (* reachable_from includes the seeds themselves; a loop exists when
       each net lies strictly in the other's transitive fanout *)
    from_a.(b) && from_b.(a)
  end

let faulty_eval c ~a ~b inputs =
  if is_feedback c a b then None
  else begin
    let good = Logic_sim.eval c inputs in
    let bridged = good.(a) && good.(b) in
    let values = Array.copy good in
    values.(a) <- bridged;
    values.(b) <- bridged;
    (* repropagate forward; the bridged nets themselves stay forced
       (at most one of them can be downstream of the other) *)
    let keep_forced id = id = a || id = b in
    Circuit.iter_gates c (fun g kind fanins ->
        let id = Circuit.node_of_gate c g in
        if not (keep_forced id) then
          values.(id) <-
            Gate.eval kind (Array.map (fun src -> values.(src)) fanins));
    Some values
  end

let logic_detects c ~a ~b inputs =
  match faulty_eval c ~a ~b inputs with
  | None -> false
  | Some bad ->
    let good = Logic_sim.eval c inputs in
    Array.exists (fun id -> good.(id) <> bad.(id)) (Circuit.outputs c)

let iddq_detects c ~a ~b inputs =
  let good = Logic_sim.eval c inputs in
  good.(a) <> good.(b)
