(** Classical stuck-at (voltage/logic) test substrate.

    The paper's premise is that IDDQ testing {e complements} logic
    testing: quiescent-current measurement catches defect classes that
    stuck-at vectors miss.  To quantify that on our workloads we need
    the logic side too: a stuck-at fault list, structural equivalence
    collapsing, and a serial fault simulator with fault dropping.

    Faults live on {e stems} (a net, affecting every reader) and on
    {e pins} (one gate input).  Equivalence collapsing keeps one
    representative per class: a controlling-value pin fault of an
    AND/NAND/OR/NOR gate, and any pin fault of a NOT/BUFF, is
    equivalent to the corresponding output stem fault and is
    dropped — detection sets are exactly equal, so collapsed coverage
    equals full coverage. *)

type fault =
  | Stem of int * bool  (** Node id stuck at the value. *)
  | Pin of { gate : int; pin : int; value : bool }
      (** Input [pin] of the gate driving node id [gate], stuck. *)

val pp_fault : Iddq_netlist.Circuit.t -> Format.formatter -> fault -> unit

val full_fault_list : Iddq_netlist.Circuit.t -> fault list
(** Two stem faults per node and two pin faults per gate input. *)

val collapsed_fault_list : Iddq_netlist.Circuit.t -> fault list
(** Equivalence-collapsed subset of {!full_fault_list}. *)

val faulty_eval :
  Iddq_netlist.Circuit.t -> fault -> bool array -> Iddq_patterns.Logic_sim.values
(** Node values under the fault for one input vector. *)

val detects : Iddq_netlist.Circuit.t -> fault -> bool array -> bool
(** Does the vector expose the fault at some primary output? *)

type sim_result = {
  total : int;
  detected : int;
  coverage : float;
  first_vector : int array;  (** Per fault, first detecting vector or -1. *)
}

val fault_simulate :
  ?domains:int ->
  ?metrics:Iddq_util.Metrics.t ->
  Iddq_netlist.Circuit.t ->
  vectors:bool array array ->
  faults:fault list ->
  sim_result
(** 64-way bit-parallel serial fault simulation with fault dropping (a
    detected fault is not re-simulated): vectors packed once, the good
    machine shared across faults, fault chunks over [domains] (default
    1) [Domain]s. *)

val undetected :
  ?domains:int ->
  ?metrics:Iddq_util.Metrics.t ->
  Iddq_netlist.Circuit.t ->
  vectors:bool array array ->
  faults:fault list ->
  fault list

val detection_matrix :
  ?domains:int ->
  ?metrics:Iddq_util.Metrics.t ->
  Iddq_netlist.Circuit.t ->
  vectors:bool array array ->
  faults:fault list ->
  Fault_sim.matrix
(** The {e full} packed detection matrix (no dropping — every
    detecting vector of every fault, one {!Iddq_util.Bitvec} row per
    fault in list order).  The stuck-at counterpart of
    {!Fault_sim.detection_matrix}: because {!Coverage.detection_matrix}
    is publicly equal to {!Fault_sim.matrix}, every {!Coverage} query
    and minimizer runs on this matrix unchanged — it is what the ATPG
    test-set minimization stage ({!val-Coverage.compact},
    {!val-Coverage.minimize_essential}, {!val-Coverage.minimize_refined})
    operates on. *)
