(** Fault-simulation utilities on top of {!Iddq_sim}: coverage growth
    curves, fault dropping, and greedy test-set compaction.

    The paper assumes "a precomputed test vector set"; these tools
    build and trim such sets for the IDDQ defect models — the test
    time saved by compaction multiplies directly into the paper's
    test-application-time metric, since every dropped vector saves
    [D_BIC + Delta(tau)]. *)

type detection_matrix
(** For each fault, the set of vectors that detect it (activation and
    current threshold both checked), computed with fault dropping. *)

val detection_matrix :
  Iddq_core.Partition.t ->
  vectors:bool array array ->
  faults:Fault.injected list ->
  detection_matrix

val num_detectable : detection_matrix -> int
val num_faults : detection_matrix -> int

val coverage_curve : detection_matrix -> float array
(** Entry [k] is the fault coverage achieved by the first [k+1]
    vectors in their given order (length = vector count). *)

val first_detection : detection_matrix -> int array
(** Per fault, the index of its first detecting vector, [-1] when
    undetectable by the set. *)

val compact : detection_matrix -> int array
(** Greedy set-cover vector selection: repeatedly keep the vector
    detecting the most still-uncovered faults, until coverage equals
    the full set's.  Returns the kept vector indices, ascending.
    Typically a small fraction of a random set. *)

val coverage_of_selection : detection_matrix -> int array -> float
(** Coverage achieved by an arbitrary subset of vector indices. *)
