(** Fault-simulation utilities on top of {!Iddq_sim}: coverage growth
    curves, fault dropping, and greedy test-set compaction.

    The paper assumes "a precomputed test vector set"; these tools
    build and trim such sets for the IDDQ defect models — the test
    time saved by compaction multiplies directly into the paper's
    test-application-time metric, since every dropped vector saves
    [D_BIC + Delta(tau)].

    The matrix is built by the 64-way bit-parallel {!Fault_sim} engine
    and stored packed (one {!Iddq_util.Bitvec} row per fault); every
    query below runs on word [AND]/popcount passes rather than boxed
    bool scans. *)

type detection_matrix = Fault_sim.matrix
(** For each fault, the packed set of vectors that detect it
    (activation and current threshold both checked).  The equation
    with {!Fault_sim.matrix} is public so other detection substrates —
    the stuck-at matrix {!Stuck_at.detection_matrix} that the ATPG
    test-set minimizer runs on — share these queries and minimizers
    without conversion. *)

val detection_matrix :
  ?domains:int ->
  ?metrics:Iddq_util.Metrics.t ->
  Iddq_core.Partition.t ->
  vectors:bool array array ->
  faults:Fault.injected list ->
  detection_matrix
(** Built by {!Fault_sim.detection_matrix}: good machine once per
    64-vector block, IDDQ activation as word operations, fault chunks
    over [domains] (default 1). *)

val detection_matrix_scalar :
  Iddq_core.Partition.t ->
  vectors:bool array array ->
  faults:Fault.injected list ->
  detection_matrix
(** The original vector-at-a-time path — the reference oracle the
    differential tests hold {!detection_matrix} to. *)

val equal : detection_matrix -> detection_matrix -> bool

val num_detectable : detection_matrix -> int
val num_faults : detection_matrix -> int
val num_vectors : detection_matrix -> int

val detects : detection_matrix -> fault:int -> vector:int -> bool
(** One matrix bit (row order = the fault-list order). *)

val coverage_curve : detection_matrix -> float array
(** Entry [k] is the fault coverage achieved by the first [k+1]
    vectors in their given order (length = vector count). *)

val first_detection : detection_matrix -> int array
(** Per fault, the index of its first detecting vector, [-1] when
    undetectable by the set.  [-1] is the {e only} sentinel: every
    other entry is a valid vector index in [0, num_vectors). *)

val compact : detection_matrix -> int array
(** Greedy set-cover vector selection: repeatedly keep the vector
    detecting the most still-uncovered faults, until coverage equals
    the full set's.  Returns the kept vector indices, ascending.
    Typically a small fraction of a random set.  Gains are
    [popcount (column AND uncovered)] over a transposed packed matrix;
    the selection is identical to the scalar greedy loop's. *)

val coverage_of_selection : detection_matrix -> int array -> float
(** Coverage achieved by an arbitrary subset of vector indices.  The
    selection is treated as a set: duplicates and ordering are
    irrelevant.  Every index must lie in [0, num_vectors);
    out-of-range indices raise [Invalid_argument].  An empty selection
    of a non-empty fault set yields [0.]; with no faults the coverage
    is vacuously [1.]. *)

(** {1 Test-set minimization}

    Heuristic minimizers in the spirit of Thamarai et al.
    (arXiv:1009.6186), all preserving the full set's coverage: every
    returned selection detects {e exactly} the faults the whole vector
    set detects ([coverage_of_selection m sel =
    num_detectable m / num_faults m]).  {!compact} above is the greedy
    set-cover baseline; the two below trade a little more work for
    selections never larger — and often smaller — than greedy's.  All
    three run on the packed matrix (word [AND]/popcount passes). *)

val essential_vectors : detection_matrix -> int array
(** Vectors that are the {e only} detector of some fault (fault row
    popcount = 1) — any full-coverage selection must contain them.
    Ascending, duplicate-free. *)

val minimize_essential : detection_matrix -> int array
(** Essential-vector extraction first, then greedy set-cover over the
    faults the essentials leave uncovered.  Ascending.  Because the
    forced essentials often cover much of the matrix as a side effect,
    this can undercut plain greedy where greedy's largest-column bait
    is suboptimal. *)

val refine : detection_matrix -> int array -> int array
(** Local refinement passes: repeatedly drop a {e redundant} selected
    vector (every fault it detects is detected by another selected
    vector) until none remains, rescanning after each pass.  The
    result is a subset of the input selection with identical coverage;
    selections out of range raise [Invalid_argument]. *)

val minimize_refined : detection_matrix -> int array
(** {!compact} followed by {!refine}: greedy set-cover whose late
    picks may have made early picks redundant, with those early picks
    then eliminated.  Never larger than {!compact}'s selection, at
    equal coverage. *)
