(** IDDQ-detectable defect models.

    These are the defect classes the paper's introduction cites as
    escaping logic test but raising quiescent current: bridging
    defects, gate-oxide shorts, and floating gates (refs [1–6] of the
    paper). *)

type t =
  | Bridge of int * int
      (** Resistive short between two nets (node ids).  Activated —
          i.e. drawing defect current — whenever a vector drives the
          two nets to opposite values. *)
  | Gate_oxide_short of int * bool
      (** Short through the gate oxide of the cell driving the node;
          activated when the node carries the given value. *)
  | Floating_gate of int
      (** Floating-gate transistor in the driver of the node: a
          constant intermediate conduction path, activated by every
          vector. *)

type injected = {
  fault : t;
  defect_current : float;
      (** Extra quiescent current drawn while activated (A). *)
}

val location : Iddq_netlist.Circuit.t -> t -> int
(** The {e gate index} whose module's sensor sees the defect current:
    for a bridge, the gate driving the first net (or, if the first
    net is a primary input, the second); oxide shorts and floating
    gates sit at their driving gate.  Raises [Invalid_argument] for a
    bridge between two primary inputs. *)

val activated : Iddq_netlist.Circuit.t -> t -> Iddq_patterns.Logic_sim.values -> bool
(** Is the defect drawing current under the given evaluated vector? *)

val random_bridge :
  rng:Iddq_util.Rng.t ->
  Iddq_netlist.Circuit.t ->
  defect_current:float ->
  injected
(** A bridge between two distinct random nets, at least one of them
    gate-driven. *)

val random_population :
  rng:Iddq_util.Rng.t ->
  Iddq_netlist.Circuit.t ->
  count:int ->
  defect_current:float ->
  injected list
(** A mixed population: ~60% bridges, ~25% gate-oxide shorts, ~15%
    floating gates, each with the given defect current. *)

val pp : Iddq_netlist.Circuit.t -> Format.formatter -> t -> unit
