(** Logic-level behaviour of bridging defects (wired-AND model).

    A resistive bridge between two nets can change logic values —
    sometimes.  Under the classical wired-AND model both nets assume
    the AND of their driven values (the stronger pull-down wins in
    CMOS).  A bridge is {e logic-detectable} by a vector only when
    that value change propagates to a primary output; it is
    {e IDDQ-detectable} whenever the two nets are driven to opposite
    values at all.  Comparing the two detection conditions quantifies
    the paper's premise that current testing catches what voltage
    testing misses (its refs [3, 14, 15]).

    Bridges that close a combinational feedback loop (each net in the
    other's cone) can oscillate or latch; they are excluded from the
    logic model and flagged by {!is_feedback}. *)

val is_feedback : Iddq_netlist.Circuit.t -> int -> int -> bool
(** [is_feedback c a b] — does bridging node ids [a] and [b] create a
    combinational loop (each reachable from the other)? *)

val faulty_eval :
  Iddq_netlist.Circuit.t ->
  a:int ->
  b:int ->
  bool array ->
  Iddq_patterns.Logic_sim.values option
(** Node values under the wired-AND bridge, or [None] for a feedback
    bridge.  Both bridged nets are forced to the AND of their fault-free
    driven values and the change is propagated forward. *)

val logic_detects : Iddq_netlist.Circuit.t -> a:int -> b:int -> bool array -> bool
(** Does the vector expose the bridge at a primary output under the
    wired-AND model?  [false] for feedback bridges. *)

val iddq_detects : Iddq_netlist.Circuit.t -> a:int -> b:int -> bool array -> bool
(** Does the vector drive the two nets to opposite values (the
    current-test activation condition)? *)
