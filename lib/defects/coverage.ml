module Circuit = Iddq_netlist.Circuit
module Charac = Iddq_analysis.Charac
module Technology = Iddq_celllib.Technology
module Logic_sim = Iddq_patterns.Logic_sim
module Partition = Iddq_core.Partition

type detection_matrix = {
  n_vectors : int;
  detects : bool array array; (* fault -> vector -> detected *)
}

let detection_matrix p ~vectors ~faults =
  let ch = Partition.charac p in
  let c = Charac.circuit ch in
  let tech = Charac.technology ch in
  let evaluated = Array.map (Logic_sim.eval c) vectors in
  let detects =
    List.map
      (fun (inj : Fault.injected) ->
        let g = Fault.location c inj.Fault.fault in
        let m = Partition.module_of_gate p g in
        let measurable =
          Partition.leakage p m +. inj.Fault.defect_current
          >= tech.Technology.iddq_threshold
        in
        if not measurable then Array.make (Array.length vectors) false
        else
          Array.map (Fault.activated c inj.Fault.fault) evaluated)
      faults
  in
  { n_vectors = Array.length vectors; detects = Array.of_list detects }

let num_faults m = Array.length m.detects

let num_detectable m =
  Array.fold_left
    (fun acc row -> if Array.exists Fun.id row then acc + 1 else acc)
    0 m.detects

let coverage_curve m =
  let nf = num_faults m in
  let caught = Array.make nf false in
  let curve = Array.make m.n_vectors 0.0 in
  let hit = ref 0 in
  for v = 0 to m.n_vectors - 1 do
    Array.iteri
      (fun f row ->
        (* fault dropping: a caught fault is never re-simulated *)
        if (not caught.(f)) && row.(v) then begin
          caught.(f) <- true;
          incr hit
        end)
      m.detects;
    curve.(v) <-
      (if nf = 0 then 1.0 else float_of_int !hit /. float_of_int nf)
  done;
  curve

let first_detection m =
  Array.map
    (fun row ->
      let rec scan v =
        if v >= Array.length row then -1 else if row.(v) then v else scan (v + 1)
      in
      scan 0)
    m.detects

let coverage_of_selection m selection =
  let nf = num_faults m in
  if nf = 0 then 1.0
  else begin
    let hit =
      Array.fold_left
        (fun acc row ->
          if Array.exists (fun v -> row.(v)) selection then acc + 1 else acc)
        0 m.detects
    in
    float_of_int hit /. float_of_int nf
  end

let compact m =
  let nf = num_faults m in
  let covered = Array.make nf false in
  let target = num_detectable m in
  let kept = ref [] in
  let covered_count = ref 0 in
  while !covered_count < target do
    (* the vector catching the most still-uncovered faults *)
    let best = ref (-1) and best_gain = ref 0 in
    for v = 0 to m.n_vectors - 1 do
      let gain = ref 0 in
      Array.iteri
        (fun f row -> if (not covered.(f)) && row.(v) then incr gain)
        m.detects;
      if !gain > !best_gain then begin
        best_gain := !gain;
        best := v
      end
    done;
    (* target counts only detectable faults, so a useful vector exists *)
    assert (!best >= 0);
    kept := !best :: !kept;
    Array.iteri
      (fun f row ->
        if (not covered.(f)) && row.(!best) then begin
          covered.(f) <- true;
          incr covered_count
        end)
      m.detects
  done;
  let arr = Array.of_list !kept in
  Array.sort compare arr;
  arr
