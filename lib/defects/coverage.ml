module Bitvec = Iddq_util.Bitvec

type detection_matrix = Fault_sim.matrix

let detection_matrix ?domains ?metrics p ~vectors ~faults =
  Fault_sim.detection_matrix ?domains ?metrics p ~vectors ~faults

let detection_matrix_scalar = Fault_sim.detection_matrix_scalar
let equal = Fault_sim.equal
let num_faults (m : detection_matrix) = Array.length m.Fault_sim.rows
let num_vectors (m : detection_matrix) = m.Fault_sim.n_vectors

let detects (m : detection_matrix) ~fault ~vector =
  Bitvec.get m.Fault_sim.rows.(fault) vector

let num_detectable (m : detection_matrix) =
  Array.fold_left
    (fun acc row -> if Bitvec.is_empty row then acc else acc + 1)
    0 m.Fault_sim.rows

let first_detection (m : detection_matrix) =
  Array.map Bitvec.first_set m.Fault_sim.rows

let coverage_curve (m : detection_matrix) =
  let nf = num_faults m in
  let nv = m.Fault_sim.n_vectors in
  (* Fault dropping collapses the curve to a histogram of first
     detections followed by a prefix sum: O(faults x words + vectors)
     instead of the old O(faults x vectors) boxed-bool sweep. *)
  let firsts = Array.make nv 0 in
  Array.iter
    (fun row ->
      let v = Bitvec.first_set row in
      if v >= 0 then firsts.(v) <- firsts.(v) + 1)
    m.Fault_sim.rows;
  let curve = Array.make nv 0.0 in
  let hit = ref 0 in
  for v = 0 to nv - 1 do
    hit := !hit + firsts.(v);
    curve.(v) <- (if nf = 0 then 1.0 else float_of_int !hit /. float_of_int nf)
  done;
  curve

let selection_mask (m : detection_matrix) selection =
  let sel = Bitvec.create m.Fault_sim.n_vectors in
  Array.iter (fun v -> Bitvec.set sel v) selection;
  sel

let coverage_of_selection (m : detection_matrix) selection =
  let nf = num_faults m in
  if nf = 0 then 1.0
  else begin
    let sel = selection_mask m selection in
    let hit =
      Array.fold_left
        (fun acc row -> if Bitvec.intersects row sel then acc + 1 else acc)
        0 m.Fault_sim.rows
    in
    float_of_int hit /. float_of_int nf
  end

(* Vector-major transpose (a fault bit-set per vector) plus the
   detectable-fault set — shared by greedy compaction and the
   minimizers below. *)
let transpose (m : detection_matrix) =
  let nf = num_faults m in
  let nv = m.Fault_sim.n_vectors in
  let columns = Array.init nv (fun _ -> Bitvec.create nf) in
  let detectable = Bitvec.create nf in
  Array.iteri
    (fun f row ->
      if not (Bitvec.is_empty row) then begin
        Bitvec.set detectable f;
        Bitvec.iter_set row (fun v -> Bitvec.set columns.(v) f)
      end)
    m.Fault_sim.rows;
  (columns, detectable)

(* Greedy passes over [uncovered] (consumed in place): each pass keeps
   the first vector with the strictly largest
   [popcount (column AND uncovered)]. *)
let greedy_cover columns uncovered kept =
  while not (Bitvec.is_empty uncovered) do
    let best = ref (-1) and best_gain = ref 0 in
    Array.iteri
      (fun v col ->
        let gain = Bitvec.inter_count col uncovered in
        if gain > !best_gain then begin
          best_gain := gain;
          best := v
        end)
      columns;
    (* every uncovered fault is detectable, so a useful vector exists *)
    assert (!best >= 0);
    kept := !best :: !kept;
    Bitvec.diff_inplace uncovered columns.(!best)
  done

let sorted_dedup l =
  let arr = Array.of_list (List.sort_uniq compare l) in
  arr

(* Greedy set cover on popcount.  The fault-major rows are transposed
   once into vector-major columns; each pass then scores a candidate
   vector as [popcount (column AND uncovered)] — word operations
   instead of the old O(vectors x faults) boxed-bool inner loop per
   pass.  Tie-break (first vector with the strictly largest gain)
   matches the original scalar loop, so selections are identical. *)
let compact (m : detection_matrix) =
  let columns, uncovered = transpose m in
  let kept = ref [] in
  greedy_cover columns uncovered kept;
  sorted_dedup !kept

let essential_vectors (m : detection_matrix) =
  let essentials = ref [] in
  Array.iter
    (fun row -> if Bitvec.count row = 1 then essentials := Bitvec.first_set row :: !essentials)
    m.Fault_sim.rows;
  sorted_dedup !essentials

let minimize_essential (m : detection_matrix) =
  let columns, uncovered = transpose m in
  let essentials = essential_vectors m in
  let kept = ref [] in
  Array.iter
    (fun v ->
      kept := v :: !kept;
      Bitvec.diff_inplace uncovered columns.(v))
    essentials;
  greedy_cover columns uncovered kept;
  sorted_dedup !kept

let refine (m : detection_matrix) selection =
  let nf = num_faults m in
  let nv = m.Fault_sim.n_vectors in
  Array.iter
    (fun v ->
      if v < 0 || v >= nv then
        invalid_arg "Coverage.refine: selection index out of range")
    selection;
  (* how many selected vectors cover each fault; a vector is redundant
     iff every fault it detects has another selected detector *)
  let cover = Array.make nf 0 in
  let selected = Array.make nv false in
  Array.iter (fun v -> selected.(v) <- true) selection;
  let columns, _ = transpose m in
  for v = 0 to nv - 1 do
    if selected.(v) then
      Bitvec.iter_set columns.(v) (fun f -> cover.(f) <- cover.(f) + 1)
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to nv - 1 do
      if selected.(v) then begin
        let redundant = ref true in
        Bitvec.iter_set columns.(v) (fun f ->
            if cover.(f) < 2 then redundant := false);
        if !redundant && not (Bitvec.is_empty columns.(v)) then begin
          selected.(v) <- false;
          Bitvec.iter_set columns.(v) (fun f -> cover.(f) <- cover.(f) - 1);
          changed := true
        end
      end
    done
  done;
  (* vectors detecting nothing never help coverage: drop them too *)
  let kept = ref [] in
  for v = nv - 1 downto 0 do
    if selected.(v) && not (Bitvec.is_empty columns.(v)) then kept := v :: !kept
  done;
  Array.of_list !kept

let minimize_refined (m : detection_matrix) = refine m (compact m)
