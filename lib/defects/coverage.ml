module Bitvec = Iddq_util.Bitvec

type detection_matrix = Fault_sim.matrix

let detection_matrix ?domains ?metrics p ~vectors ~faults =
  Fault_sim.detection_matrix ?domains ?metrics p ~vectors ~faults

let detection_matrix_scalar = Fault_sim.detection_matrix_scalar
let equal = Fault_sim.equal
let num_faults (m : detection_matrix) = Array.length m.Fault_sim.rows
let num_vectors (m : detection_matrix) = m.Fault_sim.n_vectors

let detects (m : detection_matrix) ~fault ~vector =
  Bitvec.get m.Fault_sim.rows.(fault) vector

let num_detectable (m : detection_matrix) =
  Array.fold_left
    (fun acc row -> if Bitvec.is_empty row then acc else acc + 1)
    0 m.Fault_sim.rows

let first_detection (m : detection_matrix) =
  Array.map Bitvec.first_set m.Fault_sim.rows

let coverage_curve (m : detection_matrix) =
  let nf = num_faults m in
  let nv = m.Fault_sim.n_vectors in
  (* Fault dropping collapses the curve to a histogram of first
     detections followed by a prefix sum: O(faults x words + vectors)
     instead of the old O(faults x vectors) boxed-bool sweep. *)
  let firsts = Array.make nv 0 in
  Array.iter
    (fun row ->
      let v = Bitvec.first_set row in
      if v >= 0 then firsts.(v) <- firsts.(v) + 1)
    m.Fault_sim.rows;
  let curve = Array.make nv 0.0 in
  let hit = ref 0 in
  for v = 0 to nv - 1 do
    hit := !hit + firsts.(v);
    curve.(v) <- (if nf = 0 then 1.0 else float_of_int !hit /. float_of_int nf)
  done;
  curve

let selection_mask (m : detection_matrix) selection =
  let sel = Bitvec.create m.Fault_sim.n_vectors in
  Array.iter (fun v -> Bitvec.set sel v) selection;
  sel

let coverage_of_selection (m : detection_matrix) selection =
  let nf = num_faults m in
  if nf = 0 then 1.0
  else begin
    let sel = selection_mask m selection in
    let hit =
      Array.fold_left
        (fun acc row -> if Bitvec.intersects row sel then acc + 1 else acc)
        0 m.Fault_sim.rows
    in
    float_of_int hit /. float_of_int nf
  end

(* Greedy set cover on popcount.  The fault-major rows are transposed
   once into vector-major columns (a fault bit-set per vector); each
   pass then scores a candidate vector as
   [popcount (column AND uncovered)] — word operations instead of the
   old O(vectors x faults) boxed-bool inner loop per pass.  Tie-break
   (first vector with the strictly largest gain) matches the original
   scalar loop, so selections are identical. *)
let compact (m : detection_matrix) =
  let nf = num_faults m in
  let nv = m.Fault_sim.n_vectors in
  let columns = Array.init nv (fun _ -> Bitvec.create nf) in
  let uncovered = Bitvec.create nf in
  Array.iteri
    (fun f row ->
      if not (Bitvec.is_empty row) then begin
        Bitvec.set uncovered f;
        Bitvec.iter_set row (fun v -> Bitvec.set columns.(v) f)
      end)
    m.Fault_sim.rows;
  let kept = ref [] in
  while not (Bitvec.is_empty uncovered) do
    let best = ref (-1) and best_gain = ref 0 in
    for v = 0 to nv - 1 do
      let gain = Bitvec.inter_count columns.(v) uncovered in
      if gain > !best_gain then begin
        best_gain := gain;
        best := v
      end
    done;
    (* every uncovered fault is detectable, so a useful vector exists *)
    assert (!best >= 0);
    kept := !best :: !kept;
    Bitvec.diff_inplace uncovered columns.(!best)
  done;
  let arr = Array.of_list !kept in
  Array.sort compare arr;
  arr
