(** 64-way bit-parallel IDDQ fault simulation (PPSFP).

    The scalar pipeline ({!Iddq_sim}, the original {!Coverage}) walks
    every fault over every vector with one {!Iddq_patterns.Logic_sim}
    evaluation per vector — O(faults x vectors x gates) on the
    campaign grid's hottest path.  This engine applies the classic
    parallel-pattern single-fault-propagation recipe to the IDDQ
    defect models:

    - the vector set is packed {e once} into 64-wide blocks
      ({!Iddq_patterns.Parallel_sim.pack_all});
    - the {e good machine} is evaluated once per block and shared
      across all faults — IDDQ activation needs no faulty
      re-simulation, every defect model reduces to pure [Int64] word
      operations over good-machine node words (a bridge activates
      where the two nets differ: one [XOR]; a gate-oxide short where
      the node carries the short's polarity: the node word or its
      complement; a floating gate everywhere: the block mask);
    - {e fault dropping}: a detected fault never touches another
      block;
    - fault chunks are claimed round-robin off one atomic index by a
      reusable {!Iddq_util.Domain_pool} (work stealing: dropping makes
      per-fault cost uneven, and a domain whose static range emptied
      early used to idle — the rebalanced chunks are counted as
      [steals] in {!Metrics}), the good machine being shared
      read-only.

    The scalar path survives as {!detection_matrix_scalar}, the
    reference oracle for the differential tests. *)

module Bitvec = Iddq_util.Bitvec
module Metrics = Iddq_util.Metrics

type matrix = {
  n_vectors : int;
  rows : Bitvec.t array;
      (** One packed row per fault: bit [v] set iff vector [v] detects
          it (activation and current threshold both checked). *)
}

val equal : matrix -> matrix -> bool

val activation_word : Fault.t -> good:int64 array -> int64
(** Bit [k] set iff the defect draws current under vector [k] of the
    block, given the good-machine node words.  The caller masks with
    the block's active mask. *)

val measurable : Iddq_core.Partition.t -> Fault.injected -> bool
(** Does the defect current, on top of its module's fault-free
    leakage, reach the technology's IDDQ threshold at that module's
    sensor? *)

val good_values :
  ?domains:int ->
  ?metrics:Metrics.t ->
  Iddq_netlist.Circuit.t ->
  Iddq_patterns.Parallel_sim.packed ->
  int64 array array
(** Good-machine node words for every block, evaluated in parallel
    over the [Domain] pool, in the boxed pre-CSR representation.
    Shared read-only by all fault chunks (also by
    {!Stuck_at.fault_simulate}). *)

val good_values_flat :
  ?domains:int ->
  ?metrics:Metrics.t ->
  ?pool:Iddq_util.Domain_pool.t ->
  ?stripe:int ->
  Iddq_netlist.Circuit.t ->
  Iddq_patterns.Parallel_sim.packed ->
  Iddq_patterns.Parallel_sim.ba
(** The flat-kernel good machine: one GC-opaque {e node-major} buffer
    holding node [id]'s word for block [b] at [id * num_blocks + b],
    filled by the striped levelized kernel
    ({!Iddq_patterns.Parallel_sim.eval_all_into} — [stripe] words per
    gate visit, levels split over [pool] when given, else over a
    transient [domains]-wide pool).  The layout makes every fault
    sweep a contiguous per-node row scan.  What {!detection_matrix}
    and {!first_detections} run on. *)

(** {1 Partition-thresholded entry points}

    These mirror the scalar {!Iddq_sim.run_partitioned} semantics:
    detection = activation and the module sensor crossing threshold. *)

val detection_matrix :
  ?domains:int ->
  ?metrics:Metrics.t ->
  Iddq_core.Partition.t ->
  vectors:bool array array ->
  faults:Fault.injected list ->
  matrix
(** The {e full} matrix (no dropping — every detecting vector of every
    fault), for coverage curves and compaction. *)

val first_detections :
  ?domains:int ->
  ?metrics:Metrics.t ->
  Iddq_core.Partition.t ->
  vectors:bool array array ->
  faults:Fault.injected list ->
  int array
(** Per fault, the index of its first detecting vector ([-1] when
    undetected) — with fault dropping, so a detected fault never
    touches another block. *)

(** {1 Custom-threshold entry points}

    Same engine under an arbitrary measurability predicate (e.g. the
    single-sensor guard-banded threshold of
    {!Iddq_sim.run_single_sensor}). *)

val detection_matrix_with :
  ?domains:int ->
  ?metrics:Metrics.t ->
  Iddq_netlist.Circuit.t ->
  measurable:(Fault.injected -> bool) ->
  vectors:bool array array ->
  faults:Fault.injected list ->
  matrix

val first_detections_with :
  ?domains:int ->
  ?metrics:Metrics.t ->
  Iddq_netlist.Circuit.t ->
  measurable:(Fault.injected -> bool) ->
  vectors:bool array array ->
  faults:Fault.injected list ->
  int array

(** {1 Reference oracles} *)

val detection_matrix_boxed :
  ?domains:int ->
  ?metrics:Metrics.t ->
  Iddq_core.Partition.t ->
  vectors:bool array array ->
  faults:Fault.injected list ->
  matrix
(** The pre-CSR packed engine, verbatim: boxed per-block node words,
    {!activation_word} per (fault, block).  Bit-identical to
    {!detection_matrix} by construction — kept as the differential
    oracle and the [bench kernels] baseline. *)

val detection_matrix_boxed_with :
  ?domains:int ->
  ?metrics:Metrics.t ->
  Iddq_netlist.Circuit.t ->
  measurable:(Fault.injected -> bool) ->
  vectors:bool array array ->
  faults:Fault.injected list ->
  matrix
(** {!detection_matrix_boxed} under an arbitrary measurability
    predicate (the circuit-level form the [kernels] bench times the
    flat engine against). *)

val detection_matrix_scalar :
  Iddq_core.Partition.t ->
  vectors:bool array array ->
  faults:Fault.injected list ->
  matrix
(** Vector-at-a-time {!Iddq_patterns.Logic_sim.eval} +
    {!Fault.activated} — bit-for-bit what the packed engine must
    reproduce.  Kept (and benchmarked against, see the [faultsim]
    experiment) as the differential-test oracle. *)

val parallel_ranges : domains:int -> int -> (int -> int -> unit) -> unit
(** [parallel_ranges ~domains n f] splits [0..n-1] into contiguous
    chunks and runs [f lo hi] on each, one chunk per [Domain] (the
    calling domain takes the first).  [f] must only write disjoint
    state per chunk.  Exposed for {!Stuck_at} and the benches. *)
