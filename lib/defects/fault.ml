module Rng = Iddq_util.Rng
module Circuit = Iddq_netlist.Circuit

type t =
  | Bridge of int * int
  | Gate_oxide_short of int * bool
  | Floating_gate of int

type injected = { fault : t; defect_current : float }

let location c = function
  | Bridge (a, b) ->
    if Circuit.is_gate c a then Circuit.gate_of_node c a
    else if Circuit.is_gate c b then Circuit.gate_of_node c b
    else invalid_arg "Fault.location: bridge between two primary inputs"
  | Gate_oxide_short (id, _) | Floating_gate (id) ->
    if Circuit.is_gate c id then Circuit.gate_of_node c id
    else invalid_arg "Fault.location: defect on a primary input"

let activated _c fault (values : Iddq_patterns.Logic_sim.values) =
  match fault with
  | Bridge (a, b) -> values.(a) <> values.(b)
  | Gate_oxide_short (id, polarity) -> values.(id) = polarity
  | Floating_gate _ -> true

let random_gate_node rng c =
  Circuit.node_of_gate c (Rng.int rng (Circuit.num_gates c))

let random_bridge ~rng c ~defect_current =
  let a = random_gate_node rng c in
  let rec other () =
    let b = Rng.int rng (Circuit.num_nodes c) in
    if b = a then other () else b
  in
  { fault = Bridge (a, other ()); defect_current }

let random_population ~rng c ~count ~defect_current =
  List.init count (fun _ ->
      let roll = Rng.float rng 1.0 in
      if roll < 0.60 then random_bridge ~rng c ~defect_current
      else if roll < 0.85 then
        {
          fault = Gate_oxide_short (random_gate_node rng c, Rng.bool rng);
          defect_current;
        }
      else { fault = Floating_gate (random_gate_node rng c); defect_current })

let pp c fmt = function
  | Bridge (a, b) ->
    Format.fprintf fmt "bridge(%s,%s)" (Circuit.node_name c a)
      (Circuit.node_name c b)
  | Gate_oxide_short (id, pol) ->
    Format.fprintf fmt "gos(%s,%b)" (Circuit.node_name c id) pol
  | Floating_gate id ->
    Format.fprintf fmt "fg(%s)" (Circuit.node_name c id)
