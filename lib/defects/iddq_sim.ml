module Circuit = Iddq_netlist.Circuit
module Charac = Iddq_analysis.Charac
module Timing = Iddq_analysis.Timing
module Technology = Iddq_celllib.Technology
module Logic_sim = Iddq_patterns.Logic_sim
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Sensor = Iddq_bic.Sensor
module Test_time = Iddq_bic.Test_time

type detection = {
  injected : Fault.injected;
  detected : bool;
  detecting_vector : int option;
  module_id : int option;
}

type result = {
  detections : detection list;
  coverage : float;
  vectors_applied : int;
  test_time : float;
}

let coverage_of detections =
  match detections with
  | [] -> 1.0
  | l ->
    let hit = List.length (List.filter (fun d -> d.detected) l) in
    float_of_int hit /. float_of_int (List.length l)

let run_partitioned p ~vectors ~faults =
  let ch = Partition.charac p in
  let c = Charac.circuit ch in
  let tech = Charac.technology ch in
  let evaluated = Array.map (Logic_sim.eval c) vectors in
  let detections =
    List.map
      (fun (inj : Fault.injected) ->
        let g = Fault.location c inj.Fault.fault in
        let m = Partition.module_of_gate p g in
        let base = Partition.leakage p m in
        let rec scan i =
          if i >= Array.length evaluated then None
          else if
            Fault.activated c inj.Fault.fault evaluated.(i)
            && base +. inj.Fault.defect_current
               >= tech.Technology.iddq_threshold
          then Some i
          else scan (i + 1)
        in
        let hit = scan 0 in
        {
          injected = inj;
          detected = hit <> None;
          detecting_vector = hit;
          module_id = (if hit <> None then Some m else None);
        })
      faults
  in
  let breakdown = Cost.evaluate p in
  let sensors = List.map snd (Partition.sensors p) in
  let test_time =
    Test_time.total tech ~d_bic:breakdown.Cost.bic_delay
      ~vectors:(Array.length vectors) sensors
  in
  {
    detections;
    coverage = coverage_of detections;
    vectors_applied = Array.length vectors;
    test_time;
  }

let run_single_sensor ?(guard_band = 2.0) ch ~vectors ~faults =
  let c = Charac.circuit ch in
  let tech = Charac.technology ch in
  let all_gates = Array.init (Charac.num_gates ch) Fun.id in
  let total_leak = Iddq_analysis.Switching.leakage ch all_gates in
  let threshold =
    Stdlib.max tech.Technology.iddq_threshold (guard_band *. total_leak)
  in
  let evaluated = Array.map (Logic_sim.eval c) vectors in
  let detections =
    List.map
      (fun (inj : Fault.injected) ->
        let rec scan i =
          if i >= Array.length evaluated then None
          else if
            Fault.activated c inj.Fault.fault evaluated.(i)
            && total_leak +. inj.Fault.defect_current >= threshold
          then Some i
          else scan (i + 1)
        in
        let hit = scan 0 in
        { injected = inj; detected = hit <> None; detecting_vector = hit; module_id = None })
      faults
  in
  (* one sensor for the whole CUT: sized for the full-chip transient *)
  let sensor = Sensor.for_module ch all_gates in
  let d = Timing.nominal_delay ch in
  let test_time =
    Test_time.total tech ~d_bic:d ~vectors:(Array.length vectors) [ sensor ]
  in
  {
    detections;
    coverage = coverage_of detections;
    vectors_applied = Array.length vectors;
    test_time;
  }
