module Charac = Iddq_analysis.Charac
module Timing = Iddq_analysis.Timing
module Technology = Iddq_celllib.Technology
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Sensor = Iddq_bic.Sensor
module Test_time = Iddq_bic.Test_time

type detection = {
  injected : Fault.injected;
  detected : bool;
  detecting_vector : int option;
  module_id : int option;
}

type result = {
  detections : detection list;
  coverage : float;
  vectors_applied : int;
  test_time : float;
}

let coverage_of detections =
  match detections with
  | [] -> 1.0
  | l ->
    let hit = List.length (List.filter (fun d -> d.detected) l) in
    float_of_int hit /. float_of_int (List.length l)

let run_partitioned ?domains ?metrics p ~vectors ~faults =
  let ch = Partition.charac p in
  let c = Charac.circuit ch in
  let tech = Charac.technology ch in
  let first = Fault_sim.first_detections ?domains ?metrics p ~vectors ~faults in
  let detections =
    List.mapi
      (fun f (inj : Fault.injected) ->
        let hit = if first.(f) >= 0 then Some first.(f) else None in
        let m = Partition.module_of_gate p (Fault.location c inj.Fault.fault) in
        {
          injected = inj;
          detected = hit <> None;
          detecting_vector = hit;
          module_id = (if hit <> None then Some m else None);
        })
      faults
  in
  let breakdown = Cost.evaluate p in
  let sensors = List.map snd (Partition.sensors p) in
  let test_time =
    Test_time.total tech ~d_bic:breakdown.Cost.bic_delay
      ~vectors:(Array.length vectors) sensors
  in
  {
    detections;
    coverage = coverage_of detections;
    vectors_applied = Array.length vectors;
    test_time;
  }

let run_single_sensor ?(guard_band = 2.0) ?domains ?metrics ch ~vectors ~faults
    =
  let c = Charac.circuit ch in
  let tech = Charac.technology ch in
  let all_gates = Array.init (Charac.num_gates ch) Fun.id in
  let total_leak = Iddq_analysis.Switching.leakage ch all_gates in
  let threshold =
    Stdlib.max tech.Technology.iddq_threshold (guard_band *. total_leak)
  in
  let measurable (inj : Fault.injected) =
    total_leak +. inj.Fault.defect_current >= threshold
  in
  let first =
    Fault_sim.first_detections_with ?domains ?metrics c ~measurable ~vectors
      ~faults
  in
  let detections =
    List.mapi
      (fun f (inj : Fault.injected) ->
        let hit = if first.(f) >= 0 then Some first.(f) else None in
        { injected = inj; detected = hit <> None; detecting_vector = hit; module_id = None })
      faults
  in
  (* one sensor for the whole CUT: sized for the full-chip transient *)
  let sensor = Sensor.for_module ch all_gates in
  let d = Timing.nominal_delay ch in
  let test_time =
    Test_time.total tech ~d_bic:d ~vectors:(Array.length vectors) [ sensor ]
  in
  {
    detections;
    coverage = coverage_of detections;
    vectors_applied = Array.length vectors;
    test_time;
  }
