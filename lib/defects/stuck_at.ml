module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate

type fault =
  | Stem of int * bool
  | Pin of { gate : int; pin : int; value : bool }

let pp_fault c fmt = function
  | Stem (id, v) ->
    Format.fprintf fmt "%s/sa%d" (Circuit.node_name c id) (if v then 1 else 0)
  | Pin { gate; pin; value } ->
    Format.fprintf fmt "%s.in%d/sa%d" (Circuit.node_name c gate) pin
      (if value then 1 else 0)

let full_fault_list c =
  let stems = ref [] in
  for id = Circuit.num_nodes c - 1 downto 0 do
    stems := Stem (id, false) :: Stem (id, true) :: !stems
  done;
  let pins = ref [] in
  Circuit.iter_gates c (fun g _ fanins ->
      let id = Circuit.node_of_gate c g in
      for pin = Array.length fanins - 1 downto 0 do
        pins :=
          Pin { gate = id; pin; value = false }
          :: Pin { gate = id; pin; value = true }
          :: !pins
      done);
  !stems @ List.rev !pins

(* A pin fault is equivalent to the gate's output stem fault when the
   pin value is controlling: AND/NAND input sa0, OR/NOR input sa1, and
   both values for NOT/BUFF.  Those classes keep the stem
   representative only. *)
let pin_equivalent_to_output kind value =
  match kind, value with
  | (Gate.And | Gate.Nand), false -> true
  | (Gate.Or | Gate.Nor), true -> true
  | (Gate.Not | Gate.Buff), _ -> true
  | (Gate.And | Gate.Nand), true -> false
  | (Gate.Or | Gate.Nor), false -> false
  | (Gate.Xor | Gate.Xnor), _ -> false

let collapsed_fault_list c =
  List.filter
    (function
      | Stem _ -> true
      | Pin { gate; value; _ } ->
        not (pin_equivalent_to_output (Circuit.gate_kind c gate) value))
    (full_fault_list c)

let faulty_eval c fault inputs =
  if Array.length inputs <> Circuit.num_inputs c then
    invalid_arg "Stuck_at.faulty_eval: input vector length mismatch";
  let values = Array.make (Circuit.num_nodes c) false in
  Array.blit inputs 0 values 0 (Array.length inputs);
  let stem_override id =
    match fault with
    | Stem (f, v) when f = id -> Some v
    | Stem _ | Pin _ -> None
  in
  (* stuck primary inputs *)
  for id = 0 to Circuit.num_inputs c - 1 do
    match stem_override id with Some v -> values.(id) <- v | None -> ()
  done;
  Circuit.iter_gates c (fun g kind fanins ->
      let id = Circuit.node_of_gate c g in
      let read pin src =
        match fault with
        | Pin { gate; pin = p; value } when gate = id && p = pin -> value
        | Pin _ | Stem _ -> values.(src)
      in
      let value = Gate.eval kind (Array.mapi read fanins) in
      values.(id) <-
        (match stem_override id with Some v -> v | None -> value));
  values

let detects c fault inputs =
  let good = Iddq_patterns.Logic_sim.eval c inputs in
  let bad = faulty_eval c fault inputs in
  Array.exists (fun id -> good.(id) <> bad.(id)) (Circuit.outputs c)

type sim_result = {
  total : int;
  detected : int;
  coverage : float;
  first_vector : int array;
}

(* Bit-parallel (64 vectors per pass) serial fault simulation with
   fault dropping: the vector set is packed once, the good machine is
   shared across all faults ({!Fault_sim.good_values}), and fault
   chunks are distributed over a [Domain] pool. *)
let fault_simulate ?(domains = 1) ?metrics c ~vectors ~faults =
  let module P = Iddq_patterns.Parallel_sim in
  let module Metrics = Iddq_util.Metrics in
  let fault_arr = Array.of_list faults in
  let nf = Array.length fault_arr in
  let first_vector = Array.make nf (-1) in
  let packed = P.pack_all vectors in
  let nb = P.num_blocks packed in
  let goods = Fault_sim.good_values ~domains ?metrics c packed in
  Fault_sim.parallel_ranges ~domains nf (fun lo hi ->
      let fault_blocks = ref 0 and dropped = ref 0 in
      for f = lo to hi - 1 do
        let fault = fault_arr.(f) in
        (* dropping: stop at the first detecting block *)
        let rec scan b =
          if b < nb then begin
            incr fault_blocks;
            let words = P.block packed b in
            let bad =
              match fault with
              | Stem (node, value) -> P.eval_with_stuck_node c ~node ~value words
              | Pin { gate; pin; value } ->
                P.eval_with_stuck_pin c ~gate ~pin ~value words
            in
            let diff =
              Int64.logand (P.output_diff c goods.(b) bad) (P.block_mask packed b)
            in
            if diff <> 0L then begin
              first_vector.(f) <- (b * 64) + Iddq_util.Bitvec.ctz64 diff;
              incr dropped
            end
            else scan (b + 1)
          end
        in
        scan 0
      done;
      Option.iter
        (fun m ->
          Metrics.record_fault_sim m ~blocks:0 ~fault_blocks:!fault_blocks
            ~dropped:!dropped)
        metrics);
  let detected =
    Array.fold_left (fun acc v -> if v >= 0 then acc + 1 else acc) 0 first_vector
  in
  {
    total = nf;
    detected;
    coverage = (if nf = 0 then 1.0 else float_of_int detected /. float_of_int nf);
    first_vector;
  }

let undetected ?domains ?metrics c ~vectors ~faults =
  let r = fault_simulate ?domains ?metrics c ~vectors ~faults in
  List.filteri (fun f _ -> r.first_vector.(f) < 0) faults

(* The full matrix (no dropping — every detecting vector of every
   fault), the stuck-at counterpart of {!Fault_sim.detection_matrix}:
   what the test-set minimizers ({!Coverage}) run on. *)
let detection_matrix ?(domains = 1) ?metrics c ~vectors ~faults =
  let module P = Iddq_patterns.Parallel_sim in
  let module Metrics = Iddq_util.Metrics in
  let fault_arr = Array.of_list faults in
  let nf = Array.length fault_arr in
  let nv = Array.length vectors in
  let rows = Array.init nf (fun _ -> Iddq_util.Bitvec.create nv) in
  let packed = P.pack_all vectors in
  let nb = P.num_blocks packed in
  let goods = Fault_sim.good_values ~domains ?metrics c packed in
  Fault_sim.parallel_ranges ~domains nf (fun lo hi ->
      let fault_blocks = ref 0 in
      for f = lo to hi - 1 do
        let fault = fault_arr.(f) in
        for b = 0 to nb - 1 do
          incr fault_blocks;
          let words = P.block packed b in
          let bad =
            match fault with
            | Stem (node, value) -> P.eval_with_stuck_node c ~node ~value words
            | Pin { gate; pin; value } ->
              P.eval_with_stuck_pin c ~gate ~pin ~value words
          in
          let diff =
            Int64.logand (P.output_diff c goods.(b) bad) (P.block_mask packed b)
          in
          if diff <> 0L then Iddq_util.Bitvec.set_word rows.(f) b diff
        done
      done;
      Option.iter
        (fun m ->
          Metrics.record_fault_sim m ~blocks:0 ~fault_blocks:!fault_blocks
            ~dropped:0)
        metrics);
  { Fault_sim.n_vectors = nv; rows }
