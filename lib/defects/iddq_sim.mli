(** End-to-end IDDQ test simulation: apply a vector set, strobe every
    module's BIC sensor after settling, and compare against the
    detection threshold (paper Fig. 1 behaviour over a whole test).

    The single-sensor ("off-chip" style) reference measures the whole
    CUT at once: its pass threshold must sit above the full-chip
    non-defective leakage (with a guard band), so small defect
    currents hide under the leakage — exactly the discriminability
    problem partitioning solves. *)

type detection = {
  injected : Fault.injected;
  detected : bool;
  detecting_vector : int option;  (** Index of the first detecting vector. *)
  module_id : int option;  (** Module whose sensor fired (partitioned runs). *)
}

type result = {
  detections : detection list;
  coverage : float;  (** Fraction of injected defects detected. *)
  vectors_applied : int;
  test_time : float;
      (** Total application time (s): vectors x (D_BIC + settling). *)
}

val run_partitioned :
  ?domains:int ->
  ?metrics:Iddq_util.Metrics.t ->
  Iddq_core.Partition.t ->
  vectors:bool array array ->
  faults:Fault.injected list ->
  result
(** Each defect is simulated independently (single-fault assumption):
    a vector detects it when the defect is activated and the module
    sensor's measured current reaches the technology threshold.

    Runs on the 64-way packed {!Fault_sim} engine with fault dropping;
    [domains] (default 1) distributes fault chunks over a [Domain]
    pool, [metrics] receives the engine's block counters. *)

val run_single_sensor :
  ?guard_band:float ->
  ?domains:int ->
  ?metrics:Iddq_util.Metrics.t ->
  Iddq_analysis.Charac.t ->
  vectors:bool array array ->
  faults:Fault.injected list ->
  result
(** Whole-CUT measurement with one external sensor whose threshold is
    [max I_th (guard_band * total leakage)] (default guard band 2.0) —
    a defect is caught only if leakage + defect current crosses it. *)
