module Rng = Iddq_util.Rng
module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Es = Iddq_evolution.Es
module Seeds = Iddq_evolution.Seeds
module Part_iddq = Iddq_evolution.Part_iddq
module Standard = Iddq_baseline.Standard
module Random_part = Iddq_baseline.Random_part
module Annealing = Iddq_baseline.Annealing
module Refine = Iddq_baseline.Refine

type method_ = Evolution | Standard | Random | Annealing | Refined_standard

let method_to_string = function
  | Evolution -> "evolution"
  | Standard -> "standard"
  | Random -> "random"
  | Annealing -> "annealing"
  | Refined_standard -> "refined-standard"

let method_of_string s =
  match String.lowercase_ascii s with
  | "evolution" | "es" -> Some Evolution
  | "standard" -> Some Standard
  | "random" -> Some Random
  | "annealing" | "sa" -> Some Annealing
  | "refined-standard" | "refined" -> Some Refined_standard
  | _ -> None

type t = {
  charac : Charac.t;
  partition : Partition.t;
  breakdown : Cost.breakdown;
  sensors : (int * Iddq_bic.Sensor.t) list;
  method_used : method_;
  generations : int;
}

type config = {
  library : Iddq_celllib.Library.t;
  weights : Cost.weights;
  es_params : Es.params;
  seed : int;
  module_size : int option;
  reference_sizes : int list option;
  metrics : Iddq_util.Metrics.t;
}

let default_config =
  {
    library = Iddq_celllib.Library.default;
    weights = Cost.paper_weights;
    es_params = Es.default_params;
    seed = 42;
    module_size = None;
    reference_sizes = None;
    metrics = Iddq_util.Metrics.global;
  }

let finish ~config ~method_used ~generations ch partition =
  {
    charac = ch;
    partition;
    breakdown =
      Cost.evaluate ~weights:config.weights ~metrics:config.metrics partition;
    sensors = Partition.sensors partition;
    method_used;
    generations;
  }

(* Module count implied by the configured/estimated start size. *)
let implied_module_count ~config ch =
  let n = Charac.num_gates ch in
  let size =
    match config.module_size with
    | Some s -> Stdlib.max 1 s
    | None -> Seeds.target_module_size ch
  in
  Stdlib.max 1 ((n + size - 1) / size)

let standard_sizes ~config ch =
  match config.reference_sizes with
  | Some sizes -> sizes
  | None ->
    let n = Charac.num_gates ch in
    let k = implied_module_count ~config ch in
    let base = n / k and extra = n mod k in
    List.init k (fun i -> base + if i < extra then 1 else 0)

let run_charac ?(config = default_config) method_ ch =
  if Charac.num_gates ch = 0 then
    invalid_arg "Pipeline.run: the circuit has no gates to partition";
  let rng = Rng.create config.seed in
  match method_ with
  | Evolution ->
    let starts =
      Seeds.population ~rng ?module_size:config.module_size
        ~count:config.es_params.Es.mu ch
    in
    let best, trace =
      Part_iddq.optimize ~weights:config.weights ~metrics:config.metrics
        ~params:config.es_params ~rng ~starts ()
    in
    finish ~config ~method_used:Evolution ~generations:(List.length trace) ch
      best.Es.solution
  | Standard ->
    let p = Standard.partition ch ~module_sizes:(standard_sizes ~config ch) in
    finish ~config ~method_used:Standard ~generations:0 ch p
  | Random ->
    let k = implied_module_count ~config ch in
    let p = Random_part.partition ~rng ch ~num_modules:k in
    finish ~config ~method_used:Random ~generations:0 ch p
  | Annealing ->
    let start = Seeds.chain_partition ~rng ?module_size:config.module_size ch in
    let p, _ =
      Annealing.optimize ~weights:config.weights ~metrics:config.metrics ~rng
        start
    in
    finish ~config ~method_used:Annealing ~generations:0 ch p
  | Refined_standard ->
    let start =
      Standard.partition ch ~module_sizes:(standard_sizes ~config ch)
    in
    let p, _ =
      Refine.optimize ~weights:config.weights ~metrics:config.metrics start
    in
    finish ~config ~method_used:Refined_standard ~generations:0 ch p

let run ?(config = default_config) method_ circuit =
  run_charac ~config method_ (Charac.make ~library:config.library circuit)

let compare_methods ?(config = default_config) circuit methods =
  let ch = Charac.make ~library:config.library circuit in
  let evolution_first =
    if List.mem Evolution methods then
      Evolution :: List.filter (fun m -> m <> Evolution) methods
    else methods
  in
  let config = ref config in
  let results =
    List.map
      (fun m ->
        let r = run_charac ~config:!config m ch in
        (if m = Evolution && !config.reference_sizes = None then
           let sizes =
             List.map
               (fun id -> Partition.size r.partition id)
               (Partition.module_ids r.partition)
           in
           config := { !config with reference_sizes = Some sizes });
        (m, r))
      evolution_first
  in
  (* restore the caller's method order *)
  List.map (fun m -> (m, List.assoc m results)) methods
