module Rng = Iddq_util.Rng
module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Es = Iddq_evolution.Es
module Seeds = Iddq_evolution.Seeds
module Part_iddq = Iddq_evolution.Part_iddq
module Standard = Iddq_baseline.Standard
module Random_part = Iddq_baseline.Random_part
module Annealing = Iddq_baseline.Annealing
module Refine = Iddq_baseline.Refine

type method_ = Evolution | Standard | Random | Annealing | Refined_standard

let method_to_string = function
  | Evolution -> "evolution"
  | Standard -> "standard"
  | Random -> "random"
  | Annealing -> "annealing"
  | Refined_standard -> "refined-standard"

let method_of_string s =
  match String.lowercase_ascii s with
  | "evolution" | "es" -> Some Evolution
  | "standard" -> Some Standard
  | "random" -> Some Random
  | "annealing" | "sa" -> Some Annealing
  | "refined-standard" | "refined" -> Some Refined_standard
  | _ -> None

type t = {
  charac : Charac.t;
  partition : Partition.t;
  breakdown : Cost.breakdown;
  sensors : (int * Iddq_bic.Sensor.t) list;
  method_used : method_;
  generations : int;
}

type config = {
  library : Iddq_celllib.Library.t;
  weights : Cost.weights;
  es_params : Es.params;
  seed : int;
  module_size : int option;
  reference_sizes : int list option;
  metrics : Iddq_util.Metrics.t;
}

let default_config =
  {
    library = Iddq_celllib.Library.default;
    weights = Cost.paper_weights;
    es_params = Es.default_params;
    seed = 42;
    module_size = None;
    reference_sizes = None;
    metrics = Iddq_util.Metrics.global;
  }

let config ?(library = default_config.library)
    ?(weights = default_config.weights)
    ?(es_params = default_config.es_params) ?(seed = default_config.seed)
    ?module_size ?reference_sizes ?(metrics = default_config.metrics) () =
  { library; weights; es_params; seed; module_size; reference_sizes; metrics }

(* ------------------------------------------------------------------ *)
(* Structured errors                                                   *)
(* ------------------------------------------------------------------ *)

type error =
  | Empty_circuit
  | Bad_config of string
  | Characterization_failed of string
  | Infeasible of { method_ : method_; penalized : float; min_discriminability : float }
  | Internal of string

let error_to_string = function
  | Empty_circuit -> "the circuit has no gates to partition"
  | Bad_config msg -> "bad configuration: " ^ msg
  | Characterization_failed msg -> "characterization failed: " ^ msg
  | Infeasible { method_; penalized; min_discriminability } ->
    Printf.sprintf
      "method %s produced no feasible partition (penalized cost %g, min \
       discriminability %g)"
      (method_to_string method_) penalized min_discriminability
  | Internal msg -> "internal error: " ^ msg

(* Catch what the configured passes are documented to raise on bad
   inputs and turn it into the structured error; anything else is a
   bug and propagates. *)
let validate_config ~config method_ ch =
  let num_gates = Charac.num_gates ch in
  let p = config.es_params in
  if p.Es.mu < 1 then Error (Bad_config "es_params.mu must be >= 1")
  else if p.Es.lambda < 1 then Error (Bad_config "es_params.lambda must be >= 1")
  else if p.Es.max_generations < 0 then
    Error (Bad_config "es_params.max_generations must be >= 0")
  else begin
    match config.module_size with
    | Some s when s < 1 ->
      Error (Bad_config (Printf.sprintf "module size %d is not positive" s))
    | _ -> begin
      match method_, config.reference_sizes with
      | (Standard | Refined_standard), Some sizes ->
        if List.exists (fun s -> s < 1) sizes then
          Error (Bad_config "reference sizes must all be positive")
        else begin
          let sum = List.fold_left ( + ) 0 sizes in
          if sum <> num_gates then
            Error
              (Bad_config
                 (Printf.sprintf
                    "reference sizes sum to %d but the circuit has %d gates"
                    sum num_gates))
          else Ok ()
        end
      | _ -> Ok ()
    end
  end

let finish ~config ~method_used ~generations ch partition =
  {
    charac = ch;
    partition;
    breakdown =
      Cost.evaluate ~weights:config.weights ~metrics:config.metrics partition;
    sensors = Partition.sensors partition;
    method_used;
    generations;
  }

(* Module count implied by the configured/estimated start size. *)
let implied_module_count ~config ch =
  let n = Charac.num_gates ch in
  let size =
    match config.module_size with
    | Some s -> Stdlib.max 1 s
    | None -> Seeds.target_module_size ch
  in
  Stdlib.max 1 ((n + size - 1) / size)

let standard_sizes ~config ch =
  match config.reference_sizes with
  | Some sizes -> sizes
  | None ->
    let n = Charac.num_gates ch in
    let k = implied_module_count ~config ch in
    let base = n / k and extra = n mod k in
    List.init k (fun i -> base + if i < extra then 1 else 0)

let run_charac_exn ~config method_ ch =
  let rng = Rng.create config.seed in
  match method_ with
  | Evolution ->
    let starts =
      Seeds.population ~rng ?module_size:config.module_size
        ~count:config.es_params.Es.mu ch
    in
    let best, trace =
      Part_iddq.optimize ~weights:config.weights ~metrics:config.metrics
        ~params:config.es_params ~rng ~starts ()
    in
    finish ~config ~method_used:Evolution ~generations:(List.length trace) ch
      best.Es.solution
  | Standard ->
    let p = Standard.partition ch ~module_sizes:(standard_sizes ~config ch) in
    finish ~config ~method_used:Standard ~generations:0 ch p
  | Random ->
    let k = implied_module_count ~config ch in
    let p = Random_part.partition ~rng ch ~num_modules:k in
    finish ~config ~method_used:Random ~generations:0 ch p
  | Annealing ->
    let start = Seeds.chain_partition ~rng ?module_size:config.module_size ch in
    let p, _ =
      Annealing.optimize ~weights:config.weights ~metrics:config.metrics ~rng
        start
    in
    finish ~config ~method_used:Annealing ~generations:0 ch p
  | Refined_standard ->
    let start =
      Standard.partition ch ~module_sizes:(standard_sizes ~config ch)
    in
    let p, _ =
      Refine.optimize ~weights:config.weights ~metrics:config.metrics start
    in
    finish ~config ~method_used:Refined_standard ~generations:0 ch p

let check_feasible ~require_feasible method_ (r : t) =
  if require_feasible && not r.breakdown.Cost.feasible then
    Error
      (Infeasible
         {
           method_;
           penalized = r.breakdown.Cost.penalized;
           min_discriminability = r.breakdown.Cost.min_discriminability;
         })
  else Ok r

let run_charac_result ?(config = default_config) ?(require_feasible = false)
    method_ ch =
  if Charac.num_gates ch = 0 then Error Empty_circuit
  else begin
    match validate_config ~config method_ ch with
    | Error err -> Error err
    | Ok () -> begin
      (* The passes validate their own inputs with [Invalid_argument];
         after the checks above any residual raise is a configuration
         the validator does not model, still a caller error. *)
      match run_charac_exn ~config method_ ch with
      | r -> check_feasible ~require_feasible method_ r
      | exception Invalid_argument msg -> Error (Bad_config msg)
      | exception Failure msg -> Error (Internal msg)
    end
  end

let run_result ?(config = default_config) ?require_feasible method_ circuit =
  match Charac.make ~library:config.library circuit with
  | ch -> run_charac_result ~config ?require_feasible method_ ch
  | exception Invalid_argument msg -> Error (Characterization_failed msg)
  | exception Failure msg -> Error (Characterization_failed msg)
  | exception Not_found ->
    Error (Characterization_failed "cell lookup failed for a gate kind")

let run_charac ?(config = default_config) method_ ch =
  match run_charac_result ~config method_ ch with
  | Ok r -> r
  | Error e -> invalid_arg ("Pipeline.run: " ^ error_to_string e)

let run ?(config = default_config) method_ circuit =
  match run_result ~config method_ circuit with
  | Ok r -> r
  | Error e -> invalid_arg ("Pipeline.run: " ^ error_to_string e)

let compare_methods_result ?(config = default_config) circuit methods =
  match Charac.make ~library:config.library circuit with
  | exception Invalid_argument msg -> Error (Characterization_failed msg)
  | exception Failure msg -> Error (Characterization_failed msg)
  | ch ->
    let evolution_first =
      if List.mem Evolution methods then
        Evolution :: List.filter (fun m -> m <> Evolution) methods
      else methods
    in
    let config = ref config in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | m :: tl -> begin
        match run_charac_result ~config:!config m ch with
        | Error err -> Error err
        | Ok r ->
          (if m = Evolution && !config.reference_sizes = None then
             let sizes =
               List.map
                 (fun id -> Partition.size r.partition id)
                 (Partition.module_ids r.partition)
             in
             config := { !config with reference_sizes = Some sizes });
          go ((m, r) :: acc) tl
      end
    in
    Result.map
      (fun results ->
        (* restore the caller's method order *)
        List.map (fun m -> (m, List.assoc m results)) methods)
      (go [] evolution_first)

let compare_methods ?(config = default_config) circuit methods =
  match compare_methods_result ~config circuit methods with
  | Ok results -> results
  | Error e -> invalid_arg ("Pipeline.compare_methods: " ^ error_to_string e)

(* ------------------------------------------------------------------ *)
(* Test-application time for a concrete vector count                   *)
(* ------------------------------------------------------------------ *)

let test_time (r : t) ~vectors =
  let tech = Charac.technology r.charac in
  Iddq_bic.Test_time.total tech ~d_bic:r.breakdown.Cost.bic_delay ~vectors
    (List.map snd r.sensors)

let c4_of_vectors r ~vectors =
  let t = test_time r ~vectors in
  if t <= 0.0 then 0.0 else log (t /. 1.0e-9)
