(** Table-1-style reporting: the rows of the paper's evaluation. *)

type row = {
  circuit_name : string;
  num_modules_standard : int;
  num_modules_evolution : int;
  area_standard : float;
  area_evolution : float;
  area_overhead_percent : float;
      (** Extra sensor hardware of standard over evolution:
          [100 * (A_std - A_evo) / A_evo] — the paper's
          14.5%–30.6% line. *)
  delay_overhead_standard_percent : float;
      (** BIC-induced slowdown [100 * (D_BIC - D) / D]. *)
  delay_overhead_evolution_percent : float;
  test_time_overhead_standard_percent : float;
      (** Per-vector test-time increase over the sensor-less delay. *)
  test_time_overhead_evolution_percent : float;
}

val row_of_results : circuit_name:string -> standard:Pipeline.t -> evolution:Pipeline.t -> row

val table : row list -> Iddq_util.Table.t
(** Renders rows in the layout of the paper's Table 1. *)

val pp_pipeline : Format.formatter -> Pipeline.t -> unit
(** Per-run summary: method, modules, cost breakdown, sensors. *)

val metrics_table : Iddq_util.Metrics.snapshot -> Iddq_util.Table.t
(** One-row table of the evaluation counters (see
    {!Iddq_util.Metrics}): how many cost queries ran, how many were
    full recomputations versus delta refreshes versus cache hits, the
    per-gate degradation work of each kind, and the resulting speedup
    over a recompute-everything evaluator. *)

val pp_metrics : Format.formatter -> Iddq_util.Metrics.snapshot -> unit
(** Prose one-liner of the same counters. *)
