(** One-call synthesis flow: characterize a circuit against a cell
    library, build the chain start population, optimize the partition
    with the evolution strategy, and size one BIC sensor per module.

    This is the library's main entry point; the [examples/] programs,
    the benchmark harness, the campaign runner and the resident
    service ([Iddq_server]) are thin wrappers around it.

    {b Facade conventions} (every machine-facing caller should follow
    them):
    - build configurations with the {!val-config} builder, setting
      only the fields a request carries;
    - call {!run_result} / {!run_charac_result} /
      {!compare_methods_result} and match on the structured {!error};
    - {!run}, {!run_charac} and {!compare_methods} remain as thin
      raising wrappers for interactive callers and compatibility. *)

type method_ = Evolution | Standard | Random | Annealing | Refined_standard
(** Partitioning methods: the paper's contribution ([Evolution]), its
    §5 comparison ([Standard], greedy closest-gate clustering at the
    evolution's module sizes), and the ablation comparators. *)

val method_to_string : method_ -> string
val method_of_string : string -> method_ option

type t = {
  charac : Iddq_analysis.Charac.t;
  partition : Iddq_core.Partition.t;
  breakdown : Iddq_core.Cost.breakdown;
  sensors : (int * Iddq_bic.Sensor.t) list;
  method_used : method_;
  generations : int;  (** ES generations run (0 for one-shot methods). *)
}

(** {1 Configuration} *)

type config = {
  library : Iddq_celllib.Library.t;
  weights : Iddq_core.Cost.weights;
  es_params : Iddq_evolution.Es.params;
  seed : int;
  module_size : int option;
      (** Target start-module size; [None] = estimate from the
          discriminability budget ({!Iddq_evolution.Seeds}). *)
  reference_sizes : int list option;
      (** Module sizes for [Standard] ("we take the numbers obtained
          by the evolution based algorithm"); [None] = near-equal
          sizes at the estimated module count. *)
  metrics : Iddq_util.Metrics.t;
      (** Where the run's cost-evaluation counters are recorded
          (default {!Iddq_util.Metrics.global}).  Give each job of a
          concurrent campaign its own instance so its counters are not
          polluted by jobs running in other domains. *)
}
(** @deprecated Building or updating this record directly
    ([{ default_config with ... }]) is deprecated in favour of the
    {!val-config} builder: record updates break silently when a field
    is added, while the builder keeps every omitted field at its
    default.  The type stays exposed so existing callers compile. *)

val config :
  ?library:Iddq_celllib.Library.t ->
  ?weights:Iddq_core.Cost.weights ->
  ?es_params:Iddq_evolution.Es.params ->
  ?seed:int ->
  ?module_size:int ->
  ?reference_sizes:int list ->
  ?metrics:Iddq_util.Metrics.t ->
  unit ->
  config
(** [config ()] is {!default_config}; each label overrides one field.
    This is the supported way to build a configuration — callers that
    decode requests (the campaign runner, the server) set exactly what
    the request carries and inherit defaults for the rest. *)

val default_config : config
(** Default library, paper weights, default ES parameters, seed 42. *)

(** {1 Structured errors} *)

type error =
  | Empty_circuit  (** The circuit has no gates to partition. *)
  | Bad_config of string
      (** Invalid configuration: non-positive module size, reference
          sizes that are non-positive or do not sum to the gate
          count, degenerate ES parameters. *)
  | Characterization_failed of string
      (** [Charac.make] could not characterize the circuit against
          the configured library. *)
  | Infeasible of {
      method_ : method_;
      penalized : float;
      min_discriminability : float;
    }
      (** The method finished but its best partition violates the
          feasibility constraints (only reported when the caller
          passed [~require_feasible:true]). *)
  | Internal of string  (** A pass failed in an unclassified way. *)

val error_to_string : error -> string

(** {1 Result-typed entry points} *)

val run_result :
  ?config:config ->
  ?require_feasible:bool ->
  method_ ->
  Iddq_netlist.Circuit.t ->
  (t, error) result
(** Characterize and partition.  Never raises on bad inputs: empty
    circuits, invalid configurations and characterization failures
    come back as [Error].  [require_feasible] (default [false])
    additionally turns a structurally valid but infeasible best
    partition into [Error (Infeasible _)] — useful for services that
    must not hand out partitions violating the constraints. *)

val run_charac_result :
  ?config:config ->
  ?require_feasible:bool ->
  method_ ->
  Iddq_analysis.Charac.t ->
  (t, error) result
(** Same, reusing an existing characterization (cheaper when several
    methods — or several requests — run on one circuit). *)

val compare_methods_result :
  ?config:config ->
  Iddq_netlist.Circuit.t ->
  method_ list ->
  ((method_ * t) list, error) result
(** Runs several methods on one characterization.  When the list
    contains [Evolution], it runs first and its module sizes become
    the [reference_sizes] for [Standard]/[Refined_standard], matching
    the paper's protocol.  The first failing method aborts the
    comparison. *)

(** {1 Test-application time}

    The cost function's [c4] term aggregates per-module measurement
    times independently of the vector count (the partition does not
    change the logic, so the count is a property of the test set, not
    of the partition).  Once an actual test set exists — e.g. the
    minimized set from the {!Iddq_atpg.Atpg} facade — these turn its
    size into the concrete application time of {e this} synthesized
    design, making "vectors saved by minimization" directly
    comparable in seconds and cost-units. *)

val test_time : t -> vectors:int -> float
(** Total test-application time (s) for a [vectors]-vector set:
    [vectors * (D_BIC + max_i Delta(tau_i))]
    ({!Iddq_bic.Test_time.total} on this run's sensors). *)

val c4_of_vectors : t -> vectors:int -> float
(** The c4-style log-scaled cost of that time,
    [log (test_time / 1ns)] ([0.] when the time is non-positive) —
    comparable across vector counts on one design. *)

(** {1 Raising wrappers (compatibility)} *)

val run : ?config:config -> method_ -> Iddq_netlist.Circuit.t -> t
(** {!run_result}, raising [Invalid_argument] with the rendered
    {!error} on failure. *)

val run_charac : ?config:config -> method_ -> Iddq_analysis.Charac.t -> t
(** {!run_charac_result}, raising [Invalid_argument] on failure. *)

val compare_methods :
  ?config:config -> Iddq_netlist.Circuit.t -> method_ list -> (method_ * t) list
(** {!compare_methods_result}, raising [Invalid_argument] on failure. *)
