(** One-call synthesis flow: characterize a circuit against a cell
    library, build the chain start population, optimize the partition
    with the evolution strategy, and size one BIC sensor per module.

    This is the library's main entry point; the [examples/] programs
    and the benchmark harness are thin wrappers around it. *)

type method_ = Evolution | Standard | Random | Annealing | Refined_standard
(** Partitioning methods: the paper's contribution ([Evolution]), its
    §5 comparison ([Standard], greedy closest-gate clustering at the
    evolution's module sizes), and the ablation comparators. *)

val method_to_string : method_ -> string
val method_of_string : string -> method_ option

type t = {
  charac : Iddq_analysis.Charac.t;
  partition : Iddq_core.Partition.t;
  breakdown : Iddq_core.Cost.breakdown;
  sensors : (int * Iddq_bic.Sensor.t) list;
  method_used : method_;
  generations : int;  (** ES generations run (0 for one-shot methods). *)
}

type config = {
  library : Iddq_celllib.Library.t;
  weights : Iddq_core.Cost.weights;
  es_params : Iddq_evolution.Es.params;
  seed : int;
  module_size : int option;
      (** Target start-module size; [None] = estimate from the
          discriminability budget ({!Iddq_evolution.Seeds}). *)
  reference_sizes : int list option;
      (** Module sizes for [Standard] ("we take the numbers obtained
          by the evolution based algorithm"); [None] = near-equal
          sizes at the estimated module count. *)
  metrics : Iddq_util.Metrics.t;
      (** Where the run's cost-evaluation counters are recorded
          (default {!Iddq_util.Metrics.global}).  Give each job of a
          concurrent campaign its own instance so its counters are not
          polluted by jobs running in other domains. *)
}

val default_config : config
(** Default library, paper weights, default ES parameters, seed 42. *)

val run : ?config:config -> method_ -> Iddq_netlist.Circuit.t -> t

val run_charac : ?config:config -> method_ -> Iddq_analysis.Charac.t -> t
(** Same, reusing an existing characterization (cheaper when several
    methods run on one circuit). *)

val compare_methods :
  ?config:config -> Iddq_netlist.Circuit.t -> method_ list -> (method_ * t) list
(** Runs several methods on one characterization.  When the list
    contains [Evolution], it runs first and its module sizes become
    the [reference_sizes] for [Standard]/[Refined_standard], matching
    the paper's protocol. *)
