module Table = Iddq_util.Table
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Sensor = Iddq_bic.Sensor

type row = {
  circuit_name : string;
  num_modules_standard : int;
  num_modules_evolution : int;
  area_standard : float;
  area_evolution : float;
  area_overhead_percent : float;
  delay_overhead_standard_percent : float;
  delay_overhead_evolution_percent : float;
  test_time_overhead_standard_percent : float;
  test_time_overhead_evolution_percent : float;
}

let delay_overhead_percent (b : Cost.breakdown) = 100.0 *. b.Cost.c2_delay

let test_time_overhead_percent (b : Cost.breakdown) =
  100.0
  *. (b.Cost.test_time_per_vector -. b.Cost.nominal_delay)
  /. b.Cost.nominal_delay

let row_of_results ~circuit_name ~(standard : Pipeline.t)
    ~(evolution : Pipeline.t) =
  let bs = standard.Pipeline.breakdown and be = evolution.Pipeline.breakdown in
  {
    circuit_name;
    num_modules_standard = Partition.num_modules standard.Pipeline.partition;
    num_modules_evolution = Partition.num_modules evolution.Pipeline.partition;
    area_standard = bs.Cost.sensor_area;
    area_evolution = be.Cost.sensor_area;
    area_overhead_percent =
      100.0 *. (bs.Cost.sensor_area -. be.Cost.sensor_area)
      /. be.Cost.sensor_area;
    delay_overhead_standard_percent = delay_overhead_percent bs;
    delay_overhead_evolution_percent = delay_overhead_percent be;
    test_time_overhead_standard_percent = test_time_overhead_percent bs;
    test_time_overhead_evolution_percent = test_time_overhead_percent be;
  }

let table rows =
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("#modules", Table.Right);
        ("area std", Table.Right);
        ("area evo", Table.Right);
        ("area ovh std/evo", Table.Right);
        ("delay ovh std %", Table.Right);
        ("delay ovh evo %", Table.Right);
        ("test ovh std %", Table.Right);
        ("test ovh evo %", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      let modules =
        if r.num_modules_standard = r.num_modules_evolution then
          string_of_int r.num_modules_evolution
        else
          Printf.sprintf "%d/%d" r.num_modules_standard r.num_modules_evolution
      in
      Table.add_row t
        [
          r.circuit_name;
          modules;
          Printf.sprintf "%.2e" r.area_standard;
          Printf.sprintf "%.2e" r.area_evolution;
          Printf.sprintf "%.1f%%" r.area_overhead_percent;
          Printf.sprintf "%.2e" r.delay_overhead_standard_percent;
          Printf.sprintf "%.2e" r.delay_overhead_evolution_percent;
          Printf.sprintf "%.2e" r.test_time_overhead_standard_percent;
          Printf.sprintf "%.2e" r.test_time_overhead_evolution_percent;
        ])
    rows;
  t

let metrics_table (s : Iddq_util.Metrics.snapshot) =
  let t =
    Table.create
      [
        ("evaluations", Table.Right);
        ("full", Table.Right);
        ("delta", Table.Right);
        ("cached", Table.Right);
        ("moves", Table.Right);
        ("gate work full", Table.Right);
        ("gate work delta", Table.Right);
        ("eval-equivalents", Table.Right);
        ("speedup", Table.Right);
        ("sim blocks", Table.Right);
        ("sim fault-blocks", Table.Right);
        ("sim dropped", Table.Right);
        ("sim steals", Table.Right);
      ]
  in
  Table.add_row t
    [
      string_of_int (Iddq_util.Metrics.evaluations s);
      string_of_int s.Iddq_util.Metrics.full_evals;
      string_of_int s.Iddq_util.Metrics.delta_evals;
      string_of_int s.Iddq_util.Metrics.cache_hits;
      string_of_int s.Iddq_util.Metrics.moves;
      string_of_int s.Iddq_util.Metrics.gates_full;
      string_of_int s.Iddq_util.Metrics.gates_delta;
      Printf.sprintf "%.1f" (Iddq_util.Metrics.equivalent_evals s);
      Printf.sprintf "%.1fx" (Iddq_util.Metrics.speedup s);
      string_of_int s.Iddq_util.Metrics.sim_blocks;
      string_of_int s.Iddq_util.Metrics.sim_fault_blocks;
      string_of_int s.Iddq_util.Metrics.sim_faults_dropped;
      string_of_int s.Iddq_util.Metrics.sim_steals;
    ];
  t

let pp_metrics fmt s =
  Format.fprintf fmt "@[<hov 2>%a@]" Iddq_util.Metrics.pp s

let pp_pipeline fmt (r : Pipeline.t) =
  Format.fprintf fmt "method=%s modules=%d generations=%d@."
    (Pipeline.method_to_string r.Pipeline.method_used)
    (Partition.num_modules r.Pipeline.partition)
    r.Pipeline.generations;
  Format.fprintf fmt "%a@." Cost.pp_breakdown r.Pipeline.breakdown;
  List.iter
    (fun (m, s) ->
      Format.fprintf fmt "  sensor[%d]: %a (module %d gates, d=%.1f)@." m
        Sensor.pp s
        (Partition.size r.Pipeline.partition m)
        (Partition.discriminability r.Pipeline.partition m))
    r.Pipeline.sensors
