module Rng = Iddq_util.Rng
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost

type params = { initial_temperature : float; cooling : float; steps : int }

let default_params =
  { initial_temperature = 5.0; cooling = 0.999; steps = 20_000 }

let check_params p =
  if p.initial_temperature <= 0.0 then invalid_arg "Annealing: T0 <= 0";
  if p.cooling <= 0.0 || p.cooling >= 1.0 then
    invalid_arg "Annealing: cooling must be in (0,1)";
  if p.steps < 1 then invalid_arg "Annealing: steps < 1"

(* Propose moving one random boundary gate to a random neighbouring
   module; returns the undo information, or None if no move exists. *)
let propose rng p =
  if Partition.num_modules p < 2 then None
  else begin
    let rec try_module tries =
      if tries = 0 then None
      else begin
        let src = Rng.choose_list rng (Partition.module_ids p) in
        let boundary = Partition.boundary_gates p src in
        (* keep every move reversible: never empty the source module *)
        if Array.length boundary = 0 || Partition.size p src = 1 then
          try_module (tries - 1)
        else begin
          let g = Rng.choose rng boundary in
          match Partition.neighbour_modules p g with
          | [] -> try_module (tries - 1)
          | targets ->
            let target = Rng.choose_list rng targets in
            Partition.move_gate p g target;
            Some (g, src)
        end
      end
    in
    try_module 8
  end

let optimize ?weights ?(params = default_params) ~rng start =
  check_params params;
  let cost p = (Cost.evaluate ?weights p).Cost.penalized in
  let current = Partition.copy start in
  let current_cost = ref (cost current) in
  let best = ref (Partition.copy current) in
  let best_cost = ref !current_cost in
  let temperature = ref params.initial_temperature in
  for _ = 1 to params.steps do
    (match propose rng current with
    | None -> ()
    | Some (g, src) ->
      let candidate_cost = cost current in
      let delta = candidate_cost -. !current_cost in
      let accept =
        delta <= 0.0
        || Rng.float rng 1.0 < exp (-.delta /. !temperature)
      in
      if accept then begin
        current_cost := candidate_cost;
        if candidate_cost < !best_cost then begin
          best := Partition.copy current;
          best_cost := candidate_cost
        end
      end
      else
        (* undo; the proposal never empties the source, so it is alive *)
        Partition.move_gate current g src);
    temperature := !temperature *. params.cooling
  done;
  (!best, Cost.evaluate ?weights !best)
