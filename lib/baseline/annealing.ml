module Rng = Iddq_util.Rng
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Cost_eval = Iddq_core.Cost_eval

type params = { initial_temperature : float; cooling : float; steps : int }

let default_params =
  { initial_temperature = 5.0; cooling = 0.999; steps = 20_000 }

let check_params p =
  if p.initial_temperature <= 0.0 then invalid_arg "Annealing: T0 <= 0";
  if p.cooling <= 0.0 || p.cooling >= 1.0 then
    invalid_arg "Annealing: cooling must be in (0,1)";
  if p.steps < 1 then invalid_arg "Annealing: steps < 1"

type move = { gate : int; src : int; target : int }

(* Propose moving one random boundary gate to a random neighbouring
   module; returns the move without applying it, or None if none
   exists.  The source module is filtered out of the candidate targets
   so a proposal can never be a no-op counted as an accepted move. *)
let propose rng p =
  if Partition.num_modules p < 2 then None
  else begin
    let rec try_module tries =
      if tries = 0 then None
      else begin
        let src = Rng.choose_list rng (Partition.module_ids p) in
        let boundary = Partition.boundary_gates p src in
        (* keep every move reversible: never empty the source module *)
        if Array.length boundary = 0 || Partition.size p src = 1 then
          try_module (tries - 1)
        else begin
          let g = Rng.choose rng boundary in
          match
            List.filter (fun m -> m <> src) (Partition.neighbour_modules p g)
          with
          | [] -> try_module (tries - 1)
          | targets ->
            let target = Rng.choose_list rng targets in
            Some { gate = g; src; target }
        end
      end
    in
    try_module 8
  end

let optimize ?weights ?(params = default_params) ?(full_eval = false) ?metrics
    ?on_move ~rng start =
  check_params params;
  let current = Partition.copy start in
  let eval =
    if full_eval then None else Some (Cost_eval.create ?weights ?metrics current)
  in
  let apply g target =
    match eval with
    | Some e -> Cost_eval.move e ~gate:g ~target
    | None -> Partition.move_gate current g target
  in
  let cost () =
    match eval with
    | Some e -> Cost_eval.penalized e
    | None -> (Cost.evaluate ?weights current).Cost.penalized
  in
  let current_cost = ref (cost ()) in
  let best = ref (Partition.copy current) in
  let best_cost = ref !current_cost in
  let temperature = ref params.initial_temperature in
  for step = 1 to params.steps do
    (match propose rng current with
    | None -> ()
    | Some { gate; src; target } ->
      apply gate target;
      let candidate_cost = cost () in
      let delta = candidate_cost -. !current_cost in
      let accepted =
        delta <= 0.0
        || Rng.float rng 1.0 < exp (-.delta /. !temperature)
      in
      (match on_move with
      | Some f -> f ~step ~gate ~src ~target ~accepted
      | None -> ());
      if accepted then begin
        current_cost := candidate_cost;
        if candidate_cost < !best_cost then begin
          best := Partition.copy current;
          best_cost := candidate_cost
        end
      end
      else
        (* undo; the proposal never empties the source, so it is alive *)
        apply gate src);
    temperature := !temperature *. params.cooling
  done;
  (!best, Cost.evaluate ?weights !best)
