(** Simulated annealing over partitions — one of the classical
    alternatives the paper lists (§4) for this class of problem, used
    here as an optimizer-ablation comparator.  Moves are single
    boundary-gate transfers (the same neighbourhood as the ES
    mutation); acceptance follows Metropolis with geometric cooling.

    Cost queries go through the incremental
    {!Iddq_core.Cost_eval} by default: each proposal re-evaluates only
    the two modules it touches instead of the whole circuit.  Because
    delta evaluation reproduces {!Iddq_core.Cost.evaluate} exactly,
    the search trajectory for a given rng is identical in both
    modes — [full_eval] exists as the checked fallback and for
    measuring the speedup. *)

type params = {
  initial_temperature : float;
  cooling : float;  (** Geometric factor per step, in (0,1). *)
  steps : int;  (** Total proposed moves. *)
}

val default_params : params
(** T0 = 5.0, cooling 0.999, 20_000 steps. *)

val optimize :
  ?weights:Iddq_core.Cost.weights ->
  ?params:params ->
  ?full_eval:bool ->
  ?metrics:Iddq_util.Metrics.t ->
  ?on_move:
    (step:int -> gate:int -> src:int -> target:int -> accepted:bool -> unit) ->
  rng:Iddq_util.Rng.t ->
  Iddq_core.Partition.t ->
  Iddq_core.Partition.t * Iddq_core.Cost.breakdown
(** Starts from a copy of the given partition; returns the best
    visited partition and its cost breakdown.

    [full_eval] (default [false]) bypasses the incremental evaluator
    and runs a complete {!Iddq_core.Cost.evaluate} per proposal — the
    slow reference path; with the same [rng] it visits the same states
    and returns the same result.  [metrics] receives the evaluator's
    counters (default {!Iddq_util.Metrics.global}; full-mode
    evaluations always land in the global instance).  [on_move] is
    called for every {e proposed} move with its acceptance verdict; a
    proposal never has [src = target]. *)
