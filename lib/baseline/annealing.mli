(** Simulated annealing over partitions — one of the classical
    alternatives the paper lists (§4) for this class of problem, used
    here as an optimizer-ablation comparator.  Moves are single
    boundary-gate transfers (the same neighbourhood as the ES
    mutation); acceptance follows Metropolis with geometric cooling. *)

type params = {
  initial_temperature : float;
  cooling : float;  (** Geometric factor per step, in (0,1). *)
  steps : int;  (** Total proposed moves. *)
}

val default_params : params
(** T0 = 5.0, cooling 0.999, 20_000 steps. *)

val optimize :
  ?weights:Iddq_core.Cost.weights ->
  ?params:params ->
  rng:Iddq_util.Rng.t ->
  Iddq_core.Partition.t ->
  Iddq_core.Partition.t * Iddq_core.Cost.breakdown
(** Starts from a copy of the given partition; returns the best
    visited partition and its cost breakdown. *)
