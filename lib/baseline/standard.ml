module Charac = Iddq_analysis.Charac
module Graph_algo = Iddq_netlist.Graph_algo
module Partition = Iddq_core.Partition

(* Summed separation from [g] to every gate satisfying [keep]. *)
let summed_separation u ~cutoff g ~keep =
  let sep = Graph_algo.separations_from u ~cutoff g in
  let total = ref 0 in
  Array.iteri (fun h s -> if keep h then total := !total + s) sep;
  !total

let partition ch ~module_sizes =
  let n = Charac.num_gates ch in
  if List.exists (fun s -> s <= 0) module_sizes then
    invalid_arg "Standard.partition: non-positive module size";
  if List.fold_left ( + ) 0 module_sizes <> n then
    invalid_arg "Standard.partition: sizes must sum to the gate count";
  let u = Charac.undirected ch in
  let cutoff = Charac.separation_cutoff ch in
  let assignment = Array.make n (-1) in
  let free g = assignment.(g) < 0 in
  (* dist_sum.(g): summed separation from free gate g to the gates
     already clustered into the module under construction *)
  let dist_sum = Array.make n 0 in
  let seed_gate () =
    (* free gate as near to a primary input as possible *)
    let best = ref (-1) and best_depth = ref max_int in
    for g = 0 to n - 1 do
      if free g && Charac.gate_depth ch g < !best_depth then begin
        best := g;
        best_depth := Charac.gate_depth ch g
      end
    done;
    !best
  in
  let add_to_module m g =
    assignment.(g) <- m;
    (* the new member contributes its distances to all still-free gates *)
    let sep = Graph_algo.separations_from u ~cutoff g in
    for h = 0 to n - 1 do
      if free h then dist_sum.(h) <- dist_sum.(h) + sep.(h)
    done
  in
  let next_gate () =
    let best = ref (-1) and best_sum = ref max_int in
    let ties = ref [] in
    for g = 0 to n - 1 do
      if free g then begin
        if dist_sum.(g) < !best_sum then begin
          best := g;
          best_sum := dist_sum.(g);
          ties := [ g ]
        end
        else if dist_sum.(g) = !best_sum then ties := g :: !ties
      end
    done;
    match !ties with
    | [] -> !best
    | [ g ] -> g
    | candidates ->
      (* tie-break: maximal summed path length to the unclustered.
         Huge tie sets arise while everything is beyond the cutoff;
         scoring a bounded, deterministic sample keeps this O(1) BFS
         per addition without changing the typical choice. *)
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      let candidates = take 16 (List.rev candidates) in
      let score g =
        summed_separation u ~cutoff g ~keep:(fun h -> free h && h <> g)
      in
      let rec argmax best best_score = function
        | [] -> best
        | g :: rest ->
          let s = score g in
          if s > best_score then argmax g s rest else argmax best best_score rest
      in
      argmax !best min_int candidates
  in
  List.iteri
    (fun m size ->
      Array.fill dist_sum 0 n 0;
      let seed = seed_gate () in
      add_to_module m seed;
      for _ = 2 to size do
        let g = next_gate () in
        add_to_module m g
      done)
    module_sizes;
  Partition.create ch ~assignment

let partition_uniform ch ~num_modules =
  let n = Charac.num_gates ch in
  if num_modules < 1 || num_modules > n then
    invalid_arg "Standard.partition_uniform: bad module count";
  let base = n / num_modules and extra = n mod num_modules in
  let sizes =
    List.init num_modules (fun i -> base + if i < extra then 1 else 0)
  in
  partition ch ~module_sizes:sizes
