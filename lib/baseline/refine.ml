module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost

let optimize ?weights ?(max_passes = 20) start =
  let cost p = (Cost.evaluate ?weights p).Cost.penalized in
  let p = Partition.copy start in
  let current = ref (cost p) in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    List.iter
      (fun m ->
        (* the boundary is recomputed per module; gates moved earlier
           in the pass are naturally skipped by the membership check *)
        Array.iter
          (fun g ->
            if Partition.module_of_gate p g = m && Partition.size p m > 1 then
              List.iter
                (fun target ->
                  if Partition.module_of_gate p g = m then begin
                    Partition.move_gate p g target;
                    let candidate = cost p in
                    if candidate < !current then begin
                      current := candidate;
                      improved := true
                    end
                    else Partition.move_gate p g m
                  end)
                (Partition.neighbour_modules p g))
          (Partition.boundary_gates p m))
      (Partition.module_ids p)
  done;
  (p, Cost.evaluate ?weights p)
