module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Cost_eval = Iddq_core.Cost_eval

let optimize ?weights ?metrics ?(max_passes = 20) start =
  let eval = Cost_eval.create ?weights ?metrics (Partition.copy start) in
  let p = Cost_eval.partition eval in
  let current = ref (Cost_eval.penalized eval) in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    List.iter
      (fun m ->
        (* the boundary is recomputed per module; gates moved earlier
           in the pass are naturally skipped by the membership check *)
        Array.iter
          (fun g ->
            if Partition.module_of_gate p g = m && Partition.size p m > 1 then
              List.iter
                (fun target ->
                  if Partition.module_of_gate p g = m then begin
                    Cost_eval.move eval ~gate:g ~target;
                    let candidate = Cost_eval.penalized eval in
                    if candidate < !current then begin
                      current := candidate;
                      improved := true
                    end
                    else Cost_eval.move eval ~gate:g ~target:m
                  end)
                (Partition.neighbour_modules p g))
          (Partition.boundary_gates p m))
      (Partition.module_ids p)
  done;
  (p, Cost.evaluate ?weights p)
