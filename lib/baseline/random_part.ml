module Rng = Iddq_util.Rng
module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition

let partition ~rng ch ~num_modules =
  let n = Charac.num_gates ch in
  if num_modules < 1 || num_modules > n then
    invalid_arg "Random_part.partition: bad module count";
  let order = Array.init n Fun.id in
  Rng.shuffle_in_place rng order;
  let assignment = Array.make n 0 in
  Array.iteri (fun i g -> assignment.(g) <- i mod num_modules) order;
  Partition.create ch ~assignment
