(** The paper's "standard partitioning" comparison method (§5).

    Each module starts from a free gate as near to a primary input as
    possible and grows to a specified size; the gate added next is the
    free gate whose summed path length to the gates already clustered
    is minimal, with ties broken by the maximal summed path length to
    the gates not yet clustered — producing modules whose gates are
    connected most closely.  Path lengths use the same undirected
    separation metric (cutoff [p]) as the cost function. *)

val partition :
  Iddq_analysis.Charac.t -> module_sizes:int list -> Iddq_core.Partition.t
(** [partition ch ~module_sizes] builds one module per listed size, in
    order; the sizes must be positive and sum to the gate count
    ("in our case we take the numbers obtained by the evolution based
    algorithm").  Raises [Invalid_argument] otherwise. *)

val partition_uniform :
  Iddq_analysis.Charac.t -> num_modules:int -> Iddq_core.Partition.t
(** Same, with [num_modules] near-equal sizes. *)
