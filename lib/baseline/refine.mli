(** Greedy first-improvement refinement (Kernighan–Lin-flavoured
    ablation comparator): repeatedly scan the boundary gates and apply
    any single-gate move that lowers the penalized cost, until a full
    scan finds none or the pass budget is exhausted.

    Trial moves are evaluated through the incremental
    {!Iddq_core.Cost_eval} — each try recomputes only the two touched
    modules — with results identical to full evaluation, so the scan
    order and accepted moves are unchanged from the naive
    implementation. *)

val optimize :
  ?weights:Iddq_core.Cost.weights ->
  ?metrics:Iddq_util.Metrics.t ->
  ?max_passes:int ->
  Iddq_core.Partition.t ->
  Iddq_core.Partition.t * Iddq_core.Cost.breakdown
(** Deterministic.  Default [max_passes] is 20.  Works on a copy.
    [metrics] receives the evaluation counters (default
    {!Iddq_util.Metrics.global}). *)
