(** Greedy first-improvement refinement (Kernighan–Lin-flavoured
    ablation comparator): repeatedly scan the boundary gates and apply
    any single-gate move that lowers the penalized cost, until a full
    scan finds none or the pass budget is exhausted. *)

val optimize :
  ?weights:Iddq_core.Cost.weights ->
  ?max_passes:int ->
  Iddq_core.Partition.t ->
  Iddq_core.Partition.t * Iddq_core.Cost.breakdown
(** Deterministic.  Default [max_passes] is 20.  Works on a copy. *)
