(** Uniform random partitioning: the weakest comparator for the
    optimizer ablation — gates are dealt into [num_modules] near-equal
    modules with no regard for structure. *)

val partition :
  rng:Iddq_util.Rng.t ->
  Iddq_analysis.Charac.t ->
  num_modules:int ->
  Iddq_core.Partition.t
