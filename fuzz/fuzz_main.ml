(* make fuzz-smoke: bounded, fixed-seed mutation-fuzz pass over all
   persistence front-ends.  Exit 0 and print PASS iff every mutated
   input produced Ok/Error (no exceptions) and no descriptor leaked. *)

let () =
  let iterations = ref 1500 in
  let seed = ref 0xF422 in
  Arg.parse
    [
      ("--iterations", Arg.Set_int iterations,
       "N mutated inputs per target (default 1500)");
      ("--seed", Arg.Set_int seed, "N fuzz RNG seed (default 0xF422)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fuzz_main [--iterations N] [--seed N]";
  let report = Iddq_fuzz.Harness.run ~seed:!seed ~iterations_per_target:!iterations () in
  Iddq_fuzz.Harness.pp_report stdout report;
  if Iddq_fuzz.Harness.passed report then print_endline "fuzz-smoke: PASS"
  else begin
    print_endline "fuzz-smoke: FAIL";
    exit 1
  end
