(* Byte-level corruptions of valid files: each operator models one way
   an artifact goes bad in the field — a torn write (truncate), media
   or transfer damage (flip, noise), and a botched concatenation or
   partial overwrite (splice). *)

module Rng = Iddq_util.Rng

let truncate rng s =
  if s = "" then s else String.sub s 0 (Rng.int rng (String.length s))

let flip rng s =
  if s = "" then s
  else begin
    let b = Bytes.of_string s in
    let i = Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Rng.int rng 256));
    Bytes.to_string b
  end

let splice rng a b =
  let cut s = if s = "" then 0 else Rng.int rng (String.length s + 1) in
  let i = cut a and j = cut b in
  String.sub a 0 i ^ String.sub b j (String.length b - j)

let insert rng s =
  let n = 1 + Rng.int rng 8 in
  let noise = String.init n (fun _ -> Char.chr (Rng.int rng 256)) in
  let i = if s = "" then 0 else Rng.int rng (String.length s + 1) in
  String.sub s 0 i ^ noise ^ String.sub s i (String.length s - i)

(* One random corruption of [s]; [corpus] supplies the second parent
   for splices.  Occasionally composes two operators so mutations
   drift further from the valid corpus over time. *)
let mutate rng ~corpus s =
  let one s =
    match Rng.int rng 4 with
    | 0 -> truncate rng s
    | 1 -> flip rng s
    | 2 -> splice rng s (Rng.choose_list rng corpus)
    | _ -> insert rng s
  in
  let m = one s in
  if Rng.int rng 4 = 0 then one m else m
