(* Mutation-fuzz harness for the persistence boundary.

   Every front-end parser plus the JSONL store is driven with
   thousands of corrupted variants of valid files.  The contract under
   test is the Error contract of the robustness layer: every outcome
   is [Ok] or [Error] — never an escaped exception — and no file
   descriptor leaks, measured by comparing the /proc/self/fd
   population before and after the run. *)

module Rng = Iddq_util.Rng
module Io = Iddq_util.Io
module Bench_io = Iddq_netlist.Bench_io
module Verilog_io = Iddq_netlist.Verilog_io
module Generator = Iddq_netlist.Generator
module Iscas = Iddq_netlist.Iscas
module Library = Iddq_celllib.Library
module Library_io = Iddq_celllib.Library_io
module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Partition_io = Iddq_core.Partition_io
module Pattern_io = Iddq_patterns.Pattern_io
module Spec = Iddq_campaign.Spec
module Store = Iddq_campaign.Store
module Job_result = Iddq_campaign.Job_result
module Frame = Iddq_server.Frame
module Protocol = Iddq_server.Protocol

type target = {
  name : string;
  corpus : string list;  (** Valid documents the mutations start from. *)
  parse : string -> bool;  (** [true] on [Ok]; must never raise. *)
  parse_path : (string -> bool) option;
      (** File-based variant, exercised on a temp file every few
          iterations to cover the descriptor-handling paths. *)
}

type crash = { target : string; exn : string; input : string }

type report = {
  total : int;
  oks : int;
  errors : int;
  crashes : crash list;
  fd_before : int option;
  fd_after : int option;
}

let passed r =
  r.crashes = []
  &&
  match r.fd_before, r.fd_after with
  | Some a, Some b -> a = b
  | _ -> true (* no /proc: descriptor accounting unavailable *)

(* ------------------------------------------------------------------ *)
(* Targets                                                             *)
(* ------------------------------------------------------------------ *)

let circuit_corpus () =
  let gen ~gates ~seed =
    let rng = Rng.create seed in
    Generator.layered_dag ~rng ~name:"fuzz" ~num_inputs:6 ~num_outputs:3
      ~num_gates:gates ~depth:(1 + (gates / 8)) ()
  in
  [ Iscas.c17 (); gen ~gates:24 ~seed:11; gen ~gates:60 ~seed:12 ]

let ok b = match b with Ok _ -> true | Error _ -> false

let targets () =
  let circuits = circuit_corpus () in
  let c17 = Iscas.c17 () in
  let ch = Charac.make ~library:Library.default c17 in
  let partition =
    Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |]
  in
  let vec_rng = Rng.create 13 in
  let vectors =
    Array.init 24 (fun _ -> Array.init 5 (fun _ -> Rng.bool vec_rng))
  in
  let record =
    let job = List.hd (Spec.jobs { Spec.default with Spec.circuits = [ "C17" ] }) in
    let metrics = Iddq_util.Metrics.(snapshot (create ())) in
    Job_result.failure ~job ~derived_seed:7 ~elapsed:0.5 ~metrics "fuzz seed"
  in
  let record_line = Job_result.to_line record in
  [
    {
      name = "bench";
      corpus = List.map Bench_io.to_string circuits;
      parse = (fun s -> ok (Bench_io.parse_string s));
      parse_path = Some (fun p -> ok (Bench_io.parse_file p));
    };
    {
      name = "verilog";
      corpus = List.map Verilog_io.to_string circuits;
      parse = (fun s -> ok (Verilog_io.parse_string s));
      parse_path = Some (fun p -> ok (Verilog_io.parse_file p));
    };
    {
      name = "library";
      corpus = [ Library_io.to_string Library.default ];
      parse = (fun s -> ok (Library_io.parse_string s));
      parse_path = Some (fun p -> ok (Library_io.parse_file p));
    };
    {
      name = "pattern";
      corpus = [ Pattern_io.to_string vectors ];
      parse = (fun s -> ok (Pattern_io.of_string ~expected_width:5 s));
      parse_path = Some (fun p -> ok (Pattern_io.read_file ~expected_width:5 p));
    };
    {
      name = "partition";
      corpus = [ Partition_io.to_string partition ];
      parse = (fun s -> ok (Partition_io.of_string ch s));
      parse_path = Some (fun p -> ok (Partition_io.read_file ch p));
    };
    {
      name = "spec";
      corpus = [ Spec.to_string Spec.default ];
      parse = (fun s -> ok (Spec.parse s));
      parse_path = Some (fun p -> ok (Spec.parse_file p));
    };
    {
      name = "server-frame";
      corpus =
        (let handle = Digest.to_hex (Digest.string "corpus") in
         let reqs =
           [
             Protocol.Load_circuit { name = Some "C17"; bench = None };
             Protocol.Load_circuit
               { name = None; bench = Some (Bench_io.to_string c17) };
             Protocol.Characterize { handle };
             Protocol.Partition
               {
                 handle;
                 method_ = Iddq.Pipeline.Evolution;
                 seed = 7;
                 module_size = Some 4;
                 require_feasible = true;
               };
             Protocol.Fault_sim
               {
                 handle;
                 method_ = Iddq.Pipeline.Standard;
                 seed = 1;
                 vectors = 16;
                 defects = 10;
                 defect_current = 2.0e-6;
               };
             Protocol.Testset
               {
                 handle;
                 seed = 4;
                 random_vectors = 8;
                 max_backtracks = 100;
                 budget = Some 64;
                 strategy = Iddq_atpg.Atpg.Essential;
               };
             Protocol.Campaign_submit
               { spec = Spec.to_string Spec.default; domains = 2 };
             Protocol.Campaign_status { campaign = "campaign-1" };
             Protocol.Metrics;
             Protocol.Shutdown;
           ]
         in
         [
           String.concat ""
             (List.mapi
                (fun i r -> Frame.encode (Protocol.request_to_json ~id:i r))
                reqs);
         ]);
      parse =
        (* decode only (no execution): feed the byte stream to the
           incremental decoder in small chunks and run every decoded
           frame through the request parser.  The contract is the
           server's: whatever the bytes, events come out as values —
           an Oversized event poisons the stream terminally, exactly
           as a connection would be dropped. *)
        (fun s ->
          let d = Frame.create ~max_frame:(1 lsl 20) () in
          let clean = ref true in
          let rec drain () =
            match Frame.next d with
            | None -> `More
            | Some (Frame.Frame j) ->
              (match Protocol.request_of_json j with
              | Ok _ -> ()
              | Error _ -> clean := false);
              drain ()
            | Some (Frame.Malformed _) ->
              clean := false;
              drain ()
            | Some (Frame.Oversized _) ->
              clean := false;
              `Poisoned
          in
          let len = String.length s in
          let rec go pos =
            if pos >= len then `More
            else begin
              let n = min 7 (len - pos) in
              Frame.feed d (String.sub s pos n);
              match drain () with
              | `More -> go (pos + n)
              | `Poisoned -> `Poisoned
            end
          in
          (match go 0 with `More | `Poisoned -> ());
          !clean && Frame.buffered d = 0);
      parse_path = None;
    };
    {
      name = "atpg-facade";
      (* end-to-end: whatever bytes parse as a circuit must flow
         through the Result-typed Atpg facade without an exception —
         the deprecated raw entry points could throw on odd fault
         lists; the facade's contract is Ok/Error only.  A tiny budget
         keeps PODEM bounded on every surviving mutant. *)
      corpus = List.map Bench_io.to_string circuits;
      parse =
        (fun s ->
          match Bench_io.parse_string s with
          | Error _ -> false
          | Ok c -> begin
            let config =
              Iddq_atpg.Atpg.config ~max_backtracks:8 ~budget:16
                ~random_vectors:4 ~seed:5 ()
            in
            match Iddq_atpg.Atpg.run_result ~config c with
            | Ok _ -> true
            | Error _ -> false
          end);
      parse_path = None;
    };
    {
      name = "jsonl-store";
      corpus =
        [ record_line ^ "\n" ^ record_line ^ "\n" ^ record_line ^ "\n" ];
      parse = (fun s -> ok (Job_result.of_line s));
      parse_path =
        Some
          (fun p ->
            match Store.open_ p with
            | Ok s ->
              (* a store over arbitrary bytes must still load (corrupt
                 lines drop) and take appends *)
              Store.append s record;
              Store.close s;
              true
            | Error _ -> false);
    };
  ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 0xF422) ~iterations_per_target () =
  let fd_before = Io.open_fd_count () in
  let rng = Rng.create seed in
  let tmp = Filename.temp_file "iddq-fuzz" ".bin" in
  let total = ref 0 and oks = ref 0 and errors = ref 0 in
  let crashes = ref [] in
  let preview s =
    let s = if String.length s > 60 then String.sub s 0 60 ^ "..." else s in
    String.escaped s
  in
  List.iter
    (fun t ->
      List.iteri
        (fun i valid ->
          let n = iterations_per_target / List.length t.corpus in
          let n = if i = 0 then n + (iterations_per_target mod List.length t.corpus) else n in
          let current = ref valid in
          for step = 1 to n do
            let input = Mutate.mutate rng ~corpus:t.corpus !current in
            (* keep a drifting current so later mutations stack *)
            if Rng.int rng 3 = 0 then current := input;
            incr total;
            (match t.parse input with
            | true -> incr oks
            | false -> incr errors
            | exception e ->
              crashes :=
                { target = t.name; exn = Printexc.to_string e;
                  input = preview input }
                :: !crashes);
            match t.parse_path with
            | Some parse_path when step mod 5 = 0 -> begin
              (match Io.write_file_atomic tmp input with
              | Ok () -> ()
              | Error e -> failwith (Iddq_util.Io_error.to_string e));
              incr total;
              match parse_path tmp with
              | true -> incr oks
              | false -> incr errors
              | exception e ->
                crashes :=
                  { target = t.name ^ "(file)"; exn = Printexc.to_string e;
                    input = preview input }
                  :: !crashes
            end
            | _ -> ()
          done)
        t.corpus)
    (targets ());
  (try Sys.remove tmp with Sys_error _ -> ());
  let fd_after = Io.open_fd_count () in
  {
    total = !total;
    oks = !oks;
    errors = !errors;
    crashes = List.rev !crashes;
    fd_before;
    fd_after;
  }

let pp_report out r =
  Printf.fprintf out
    "fuzz: %d mutated inputs -> %d Ok, %d Error, %d escaped exception(s); \
     descriptors %s\n"
    r.total r.oks r.errors
    (List.length r.crashes)
    (match r.fd_before, r.fd_after with
    | Some a, Some b when a = b -> Printf.sprintf "stable (%d)" a
    | Some a, Some b -> Printf.sprintf "LEAKED (%d -> %d)" a b
    | _ -> "not measurable");
  List.iter
    (fun c ->
      Printf.fprintf out "  CRASH %-12s %s\n    input: \"%s\"\n" c.target c.exn
        c.input)
    r.crashes
