(* Cost-aware drive selection (the paper's §6 future work): after
   partitioning, re-map peak-defining gates with timing slack to
   low-drive cells, shrinking every module's worst-case transient and
   therefore its BIC bypass switch - without stretching the critical
   path.

   Run with: dune exec examples/drive_selection.exe *)

module Iscas = Iddq_netlist.Iscas
module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Drive_select = Iddq_resynth.Drive_select

let () =
  let circuit = Iscas.c880_like () in
  Format.printf "circuit: %a@.@."
    Iddq_netlist.Circuit.pp_stats
    (Iddq_netlist.Circuit.stats circuit);
  let result = Iddq.Pipeline.run Iddq.Pipeline.Evolution circuit in
  Format.printf "partitioned: %d modules, sensor area %.4e@."
    (Partition.num_modules result.Iddq.Pipeline.partition)
    result.Iddq.Pipeline.breakdown.Cost.sensor_area;
  let r = Drive_select.optimize ~max_swaps:96 result.Iddq.Pipeline.partition in
  let before = r.Drive_select.before and after = r.Drive_select.after in
  Format.printf "@.drive selection: %d gates re-mapped to the low-drive variant@."
    (List.length r.Drive_select.swaps);
  Format.printf "  sensor area : %.4e -> %.4e  (%.1f%% saved)@."
    before.Cost.sensor_area after.Cost.sensor_area
    (100.0 *. (1.0 -. (after.Cost.sensor_area /. before.Cost.sensor_area)));
  Format.printf "  nominal D   : %.4e s -> %.4e s (slack-bounded: unchanged)@."
    before.Cost.nominal_delay after.Cost.nominal_delay;
  Format.printf "  delay ovh   : %.3e%% -> %.3e%%@."
    (100.0 *. before.Cost.c2_delay)
    (100.0 *. after.Cost.c2_delay);
  Format.printf "  total cost  : %.2f -> %.2f@." before.Cost.penalized
    after.Cost.penalized;
  (* where did the swaps land? *)
  let by_module = Hashtbl.create 8 in
  List.iter
    (fun (s : Drive_select.swap) ->
      let cur =
        Option.value ~default:0 (Hashtbl.find_opt by_module s.Drive_select.module_id)
      in
      Hashtbl.replace by_module s.Drive_select.module_id (cur + 1))
    r.Drive_select.swaps;
  Format.printf "@.swaps per module:@.";
  List.iter
    (fun m ->
      Format.printf "  module %d (%d gates): %d low-drive swaps, imax %.3e A@." m
        (Partition.size r.Drive_select.partition m)
        (Option.value ~default:0 (Hashtbl.find_opt by_module m))
        (Partition.max_transient_current r.Drive_select.partition m))
    (Partition.module_ids r.Drive_select.partition)
