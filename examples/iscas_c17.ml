(* The paper's worked example (Figs. 3-5): partitioning ISCAS85 C17
   with the evolution strategy.  The paper's optimum is the two-module
   partition {(1,3,5), (2,4,6)} = {{10,16,22}, {11,19,23}} - the two
   output cones.

   Run with: dune exec examples/iscas_c17.exe *)

module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Es = Iddq_evolution.Es

let show_partition circuit p =
  List.iter
    (fun m ->
      let names =
        Array.to_list (Partition.members p m)
        |> List.map (fun g -> Circuit.node_name circuit (Circuit.node_of_gate circuit g))
      in
      Format.printf "  module %d: {%s}  d=%.1f imax=%.2e S=%d@." m
        (String.concat "," names)
        (Partition.discriminability p m)
        (Partition.max_transient_current p m)
        (Partition.separation_total p m))
    (Partition.module_ids p)

let () =
  let circuit = Iscas.c17 () in
  Format.printf "C17: %a@.@." Circuit.pp_stats (Circuit.stats circuit);
  (* C17 is tiny; scale the detection threshold down so that, as in
     the paper's worked example, discriminability caps modules at
     three gates and the optimum is a two-module partition *)
  let technology =
    {
      Iddq_celllib.Technology.default with
      Iddq_celllib.Technology.iddq_threshold = 4.0e-9;
    }
  in
  let library =
    match
      Iddq_celllib.Library.make ~name:"cmos1u-c17" ~technology
        ~cells:
          (List.map
             (fun k -> (k, Iddq_celllib.Library.cell Iddq_celllib.Library.default k))
             Iddq_netlist.Gate.all_kinds)
        ()
    with
    | Ok l -> l
    | Error e -> failwith e
  in
  let config =
    {
      Iddq.Pipeline.default_config with
      library;
      module_size = Some 3;
      es_params =
        { Es.default_params with max_generations = 200; stall_generations = 40 };
    }
  in
  let ch = Charac.make ~library:config.Iddq.Pipeline.library circuit in
  let rng = Iddq_util.Rng.create config.Iddq.Pipeline.seed in
  let starts = Iddq_evolution.Seeds.population ~rng ~module_size:3 ~count:4 ch in
  Format.printf "start partitions (chain clustering):@.";
  List.iteri
    (fun i p ->
      Format.printf " start %d (cost %.4f):@." i
        (Cost.evaluate p).Cost.penalized;
      show_partition circuit p)
    starts;
  let best, trace =
    Iddq_evolution.Part_iddq.optimize ~params:config.Iddq.Pipeline.es_params
      ~rng ~starts ()
  in
  Format.printf "@.evolution trace (first 10 generations):@.";
  List.iteri
    (fun i (r : Es.generation_report) ->
      if i < 10 then
        Format.printf "  gen %3d: best %.4f mean %.4f@." r.Es.generation
          r.Es.best_cost r.Es.mean_cost)
    trace;
  Format.printf "@.converged after %d generations@." (List.length trace);
  Format.printf "final partition (cost %.4f):@." best.Es.cost;
  show_partition circuit best.Es.solution;
  (* compare against the paper's optimum {(10,16,22),(11,19,23)} *)
  let paper_assignment =
    let p = Array.make (Circuit.num_gates circuit) 0 in
    List.iter
      (fun name ->
        match Circuit.node_id_of_name circuit name with
        | Some id -> p.(Circuit.gate_of_node circuit id) <- 1
        | None -> assert false)
      [ "11"; "19"; "23" ];
    p
  in
  let paper = Partition.create ch ~assignment:paper_assignment in
  Format.printf
    "@.the paper's reported optimum {(10,16,22),(11,19,23)} costs %.4f under \
     our calibrated estimators@ (the ES result is the same shape - two \
     balanced, connected 3-gate modules - and may differ in cost by a few \
     percent because the electrical constants differ):@."
    (Cost.evaluate paper).Cost.penalized;
  show_partition circuit paper
