(* The paper's Figure 2: the *shape* of a partition group changes the
   required BIC sensor size.  On a 2-D cell array where every cell of
   a column switches in the same time slot, a row-shaped module never
   fires two cells at once, while a column-shaped module fires all of
   them together - so its bypass switch must be sized for the full
   parallel current.

   Run with: dune exec examples/array_shape.exe *)

module Generator = Iddq_netlist.Generator
module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Sensor = Iddq_bic.Sensor

let rows = 6
let cols = 6

let assignment_by ~f ch =
  let n = Charac.num_gates ch in
  let a = Array.make n 0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      a.(Generator.cell_array_gate ~rows ~cols ~r ~c) <- f r c
    done
  done;
  ignore n;
  a

let describe label p =
  let total_area =
    List.fold_left
      (fun acc (_, s) -> acc +. s.Sensor.area)
      0.0 (Partition.sensors p)
  in
  let worst_imax =
    List.fold_left
      (fun acc m -> Stdlib.max acc (Partition.max_transient_current p m))
      0.0 (Partition.module_ids p)
  in
  Format.printf "%-22s modules=%d  worst imax=%.3e A  sensor area=%.4e@." label
    (Partition.num_modules p) worst_imax total_area;
  total_area

let () =
  let circuit = Generator.cell_array ~rows ~cols in
  Format.printf "cell array %dx%d: %a@.@." rows cols
    Iddq_netlist.Circuit.pp_stats
    (Iddq_netlist.Circuit.stats circuit);
  let ch = Charac.make ~library:Iddq_celllib.Library.default circuit in
  (* partition 1: one module per row (cells switch at distinct slots) *)
  let by_rows = Partition.create ch ~assignment:(assignment_by ~f:(fun r _ -> r) ch) in
  (* partition 2: one module per column (all cells switch together) *)
  let by_cols = Partition.create ch ~assignment:(assignment_by ~f:(fun _ c -> c) ch) in
  let area_rows = describe "partition 1 (rows)" by_rows in
  let area_cols = describe "partition 2 (columns)" by_cols in
  Format.printf
    "@.column-shaped modules need %.1fx more sensor area at equal module \
     count:@ the group shape alone changes the required switch size (Fig. 2).@."
    (area_cols /. area_rows);
  Format.printf "@.cost breakdowns:@.";
  Format.printf "  rows:    %a@." Cost.pp_breakdown (Cost.evaluate by_rows);
  Format.printf "  columns: %a@." Cost.pp_breakdown (Cost.evaluate by_cols)
