(* Quickstart: build a small netlist with the Builder API, synthesize
   an IDDQ-testable version (partition + one BIC sensor per module),
   and print the resulting design.

   Run with: dune exec examples/quickstart.exe *)

module Builder = Iddq_netlist.Builder
module Gate = Iddq_netlist.Gate
module Partition = Iddq_core.Partition

let build_circuit () =
  let b = Builder.create ~name:"demo" () in
  List.iter (Builder.add_input b) [ "a"; "b"; "c"; "d"; "e" ];
  Builder.add_gate b "n1" Gate.Nand [ "a"; "b" ];
  Builder.add_gate b "n2" Gate.Nor [ "c"; "d" ];
  Builder.add_gate b "n3" Gate.And [ "n1"; "n2" ];
  Builder.add_gate b "n4" Gate.Xor [ "n2"; "e" ];
  Builder.add_gate b "n5" Gate.Or [ "n3"; "n4" ];
  Builder.add_gate b "n6" Gate.Not [ "n5" ];
  Builder.add_gate b "n7" Gate.Nand [ "n3"; "n6" ];
  Builder.add_gate b "n8" Gate.Nand [ "n4"; "n6" ];
  Builder.add_output b "n7";
  Builder.add_output b "n8";
  Builder.freeze_exn b

let () =
  let circuit = build_circuit () in
  Format.printf "circuit: %a@."
    Iddq_netlist.Circuit.pp_stats
    (Iddq_netlist.Circuit.stats circuit);
  (* force a 2-module partition so the tiny demo actually partitions *)
  let config = { Iddq.Pipeline.default_config with module_size = Some 4 } in
  let result = Iddq.Pipeline.run ~config Iddq.Pipeline.Evolution circuit in
  Format.printf "@.synthesis result:@.%a" Iddq.Report.pp_pipeline result;
  Format.printf "@.partition detail:@.%a" Partition.pp result.Iddq.Pipeline.partition;
  List.iter
    (fun m ->
      let gates = Partition.members result.Iddq.Pipeline.partition m in
      let names =
        Array.to_list gates
        |> List.map (fun g ->
               Iddq_netlist.Circuit.node_name circuit
                 (Iddq_netlist.Circuit.node_of_gate circuit g))
      in
      Format.printf "module %d: {%s}@." m (String.concat ", " names))
    (Partition.module_ids result.Iddq.Pipeline.partition)
