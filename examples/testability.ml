(* Testability analysis around the IDDQ flow: SCOAP measures, the
   pessimistic vs probabilistic vs realized current estimates, and the
   logic-vs-IDDQ detection comparison for bridging defects.

   Run with: dune exec examples/testability.exe *)

module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Charac = Iddq_analysis.Charac
module Scoap = Iddq_analysis.Scoap
module Activity = Iddq_analysis.Activity
module Probability = Iddq_analysis.Probability
module Switching = Iddq_analysis.Switching
module Stuck_at = Iddq_defects.Stuck_at
module Bridge_logic = Iddq_defects.Bridge_logic
module Pattern_gen = Iddq_patterns.Pattern_gen
module Rng = Iddq_util.Rng

let () =
  let circuit = Iscas.c499_like () in
  Format.printf "circuit: %a@.@." Circuit.pp_stats (Circuit.stats circuit);
  (* SCOAP: where are the hard spots? *)
  let scoap = Scoap.compute circuit in
  Format.printf "five hardest gates (SCOAP co + min cc):@.";
  Array.iter
    (fun g ->
      let id = Circuit.node_of_gate circuit g in
      Format.printf "  %-8s cc0=%d cc1=%d co=%d@." (Circuit.node_name circuit id)
        (Scoap.cc0 scoap id) (Scoap.cc1 scoap id) (Scoap.co scoap id))
    (Scoap.hardest_gates scoap circuit ~count:5);
  (* current estimates at three levels of pessimism *)
  let ch = Charac.make ~library:Iddq_celllib.Library.default circuit in
  let gates = Array.init (Charac.num_gates ch) Fun.id in
  let rng = Rng.create 9 in
  let vectors = Pattern_gen.random ~rng circuit ~count:128 in
  let realized = Activity.measure ch ~gates ~vectors in
  Format.printf "@.whole-circuit transient estimates:@.";
  Format.printf "  pessimistic (paper) : %.3e A@."
    (Switching.max_transient_current ch gates);
  Format.printf "  probabilistic       : %.3e A@."
    (Probability.expected_max_current ch gates);
  Format.printf "  realized (128 vecs) : %.3e A@." realized.Activity.realized_max;
  (* stuck-at coverage of the same vectors *)
  let sa =
    Stuck_at.fault_simulate circuit ~vectors
      ~faults:(Stuck_at.collapsed_fault_list circuit)
  in
  Format.printf "@.stuck-at: %d collapsed faults, %.1f%% random-pattern coverage@."
    sa.Stuck_at.total
    (100.0 *. sa.Stuck_at.coverage);
  (* bridge detection: logic vs IDDQ on a sample *)
  let n = Circuit.num_gates circuit in
  let sample = ref [] in
  while List.length !sample < 60 do
    let a = Circuit.node_of_gate circuit (Rng.int rng n) in
    let b = Circuit.node_of_gate circuit (Rng.int rng n) in
    if a <> b && not (Bridge_logic.is_feedback circuit a b) then
      sample := (a, b) :: !sample
  done;
  let logic, iddq =
    List.fold_left
      (fun (l, i) (a, b) ->
        ( (if Array.exists (Bridge_logic.logic_detects circuit ~a ~b) vectors then l + 1 else l),
          if Array.exists (Bridge_logic.iddq_detects circuit ~a ~b) vectors then i + 1 else i ))
      (0, 0) !sample
  in
  Format.printf
    "bridges (60 sampled): %d logic-detectable, %d IDDQ-activated - the@ \
     complementary coverage the paper's introduction argues for.@."
    logic iddq
