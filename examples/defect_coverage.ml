(* End-to-end IDDQ test (the behaviour of Fig. 1's sensor over a whole
   test): inject a population of bridging / gate-oxide-short /
   floating-gate defects, apply pseudo-random vectors, and compare the
   partitioned on-chip BIC test against a single whole-chip
   measurement whose threshold must sit above the full-chip leakage.

   Run with: dune exec examples/defect_coverage.exe *)

module Iscas = Iddq_netlist.Iscas
module Charac = Iddq_analysis.Charac
module Fault = Iddq_defects.Fault
module Iddq_sim = Iddq_defects.Iddq_sim
module Pattern_gen = Iddq_patterns.Pattern_gen

(* A leakier process: 10x the default per-gate quiescent current.
   This is the paper's motivating scenario - the non-defective IDDQ of
   the whole chip exceeds 1 uA, so a single measurement cannot
   discriminate small defects. *)
let leaky_library () =
  let base = Iddq_celllib.Library.default in
  let cells =
    List.map
      (fun k ->
        let c = Iddq_celllib.Library.cell base k in
        (k, { c with Iddq_celllib.Cell.leakage = 10.0 *. c.Iddq_celllib.Cell.leakage }))
      Iddq_netlist.Gate.all_kinds
  in
  match
    Iddq_celllib.Library.make ~name:"cmos1u-leaky"
      ~technology:(Iddq_celllib.Library.technology base)
      ~cells ()
  with
  | Ok l -> l
  | Error e -> failwith e

let () =
  let circuit = Iscas.c2670_like () in
  Format.printf "circuit: %a@.@."
    Iddq_netlist.Circuit.pp_stats
    (Iddq_netlist.Circuit.stats circuit);
  let config =
    { Iddq.Pipeline.default_config with library = leaky_library () }
  in
  let result = Iddq.Pipeline.run ~config Iddq.Pipeline.Evolution circuit in
  let ch = result.Iddq.Pipeline.charac in
  Format.printf "partitioned design:@.%a@." Iddq.Report.pp_pipeline result;
  let rng = Iddq_util.Rng.create 7 in
  (* defects drawing 1.2 uA: above the per-module threshold, hidden
     below the guard-banded full-chip threshold *)
  let faults =
    Fault.random_population ~rng circuit ~count:200 ~defect_current:1.2e-6
  in
  let vectors = Pattern_gen.random ~rng circuit ~count:64 in
  let partitioned =
    Iddq_sim.run_partitioned result.Iddq.Pipeline.partition ~vectors ~faults
  in
  let single = Iddq_sim.run_single_sensor ch ~vectors ~faults in
  let pct x = 100.0 *. x in
  Format.printf "@.%d defects, %d vectors:@." (List.length faults)
    (Array.length vectors);
  Format.printf "  partitioned BIC test: coverage %5.1f%%  test time %.3e s@."
    (pct partitioned.Iddq_sim.coverage)
    partitioned.Iddq_sim.test_time;
  Format.printf "  single-sensor test:   coverage %5.1f%%  test time %.3e s@."
    (pct single.Iddq_sim.coverage)
    single.Iddq_sim.test_time;
  (* which defect classes were missed by the single sensor? *)
  let missed =
    List.filter (fun d -> not d.Iddq_sim.detected) single.Iddq_sim.detections
  in
  Format.printf
    "@.the single sensor misses %d defects: their %.1f uA lies below the \
     guard-banded full-chip threshold.@."
    (List.length missed) 1.2;
  match missed with
  | [] -> ()
  | d :: _ ->
    Format.printf "  e.g. %a@."
      (Fault.pp circuit)
      d.Iddq_sim.injected.Fault.fault
